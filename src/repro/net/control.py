"""The control network: connection-less datagram transport plus the
request/ACK/NACK endpoint discipline of paper §3.

The network itself only knows reachability (a directional blocked-pair
set, so asymmetric partitions are expressible), delay and loss.  All
protocol behaviour — retries, at-most-once execution, ACK/NACK, the
hooks the lease protocol attaches to — lives in :class:`Endpoint`.

The cluster control plane (:mod:`repro.cluster`) is an ordinary tenant
of this transport: coordinator pings, shard-map pushes/fetches and
slot-release handoffs are plain request/ACK exchanges (the
``CLUSTER_*`` kinds in :mod:`repro.net.message`), so every failure
mode expressible here — loss, delay, one-way partitions — applies to
membership traffic exactly as it does to lease traffic.

Hot-path design notes: delivery is a dedicated :class:`_DeliveryEvent`
(no per-datagram closure), the request/retry loops race events with
:class:`repro.sim.events.FirstOf` instead of building an ``AnyOf`` plus
result dict per attempt, trace emission is guarded by the recorder's
no-op flag, and the at-most-once eviction queue is a deque.  Event
scheduling order and RNG draw order are unchanged, so traces are
bit-identical to the pre-optimization transport.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Deque, Dict, Generator,
                    List, Optional, Set, Tuple)

from repro.net.message import (
    Ack,
    DeliveryError,
    Message,
    MsgKind,
    Nack,
    NackError,
)
from repro.sim.clock import LocalClock
from repro.sim.events import Event, FirstOf, Timeout
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.obs import Observability
    from repro.obs.registry import Metric
    from repro.obs.spans import Span

# A request handler may return a decision tuple directly, or a generator
# that the endpoint runs as a process and whose return value is the
# decision tuple.  Decisions: ("ack", payload), ("nack", payload),
# ("silent", None).
HandlerResult = Tuple[str, Optional[Dict[str, Any]]]
Handler = Callable[[Message], Any]

_ACK = MsgKind.ACK
_NACK = MsgKind.NACK


@dataclass(frozen=True)
class RetryPolicy:
    """Sender-side datagram retry discipline (local-clock seconds).

    ``pending_timeout`` bounds how long a requester waits for the final
    result of a transaction the receiver acknowledged as *pending*
    (deferred lock grants can legitimately take a full lease interval).
    """

    timeout: float = 1.0
    retries: int = 3
    pending_timeout: float = 120.0

    @property
    def attempts(self) -> int:
        """Total number of transmissions."""
        return self.retries + 1


class _DeliveryEvent(Event):
    """An in-flight datagram: fires at arrival time and hands the message
    to the target endpoint.

    Replaces the per-datagram ``deliver`` closure + generic event pair:
    one allocation, no cell variables, and the arrival logic runs as an
    overridden ``_fire``.  Scheduling consumes exactly one sequence
    number at transmit time, as the old ``Event.succeed(delay=...)`` did.
    """

    __slots__ = ("net", "msg", "target")

    def __init__(self, net: "ControlNetwork", msg: Message,
                 target: "Endpoint", delay: float) -> None:
        sim = net.sim
        self.sim = sim
        self.callbacks = None
        self._value = None
        self._exc = None
        self._triggered = True
        self._processed = False
        self._defused = False
        self._waiter = None
        self.net = net
        self.msg = msg
        self.target = target
        sim._schedule(self, delay)

    def _fire(self) -> None:
        self._processed = True
        net = self.net
        msg = self.msg
        target = self.target
        # A partition may have formed while the datagram was in flight;
        # model cut links by re-checking at delivery time.
        blocked = net._blocked
        if (blocked and (msg.src, msg.dst) in blocked) or not target.alive:
            net.dropped_count += 1
            trace = net.trace
            if not trace._noop:
                trace.emit(net.sim._now, "msg.dropped", msg.src,
                           dst=msg.dst, msg_kind=msg.kind)
            return
        net.delivered_count += 1
        net.bytes_delivered += msg.size_bytes()
        trace = net.trace
        if not trace._noop:
            # Attribute the receive to the endpoint that actually takes
            # delivery: an in-network cache interposing on msg.dst must
            # not leave trace events claiming the origin server saw the
            # request (the nack-timed-out oracle audits exactly that).
            trace.emit(net.sim._now, "msg.recv", target.name,
                       msg_kind=msg.kind, src=msg.src, msg_id=msg.msg_id,
                       seq=msg.seq)
        target._on_datagram(msg)


class ControlNetwork:
    """Datagram fabric between named nodes.

    Reachability is directional: ``block(a, b)`` stops a→b datagrams
    only, which is how asymmetric partitions (paper §2) are modelled.
    """

    def __init__(self, sim: Simulator, streams: RandomStreams,
                 trace: Optional[TraceRecorder] = None,
                 base_delay: float = 0.001, jitter: float = 0.0005,
                 drop_probability: float = 0.0) -> None:
        self.sim = sim
        self.trace = trace if trace is not None else TraceRecorder(
            enabled=False, counting=False)
        self.base_delay = base_delay
        self.jitter = jitter
        self.drop_probability = drop_probability
        self._rng = streams.get("net.control")
        self._endpoints: Dict[str, "Endpoint"] = {}
        # Lazy-registration hook (scale path): consulted when a datagram
        # addresses an unattached name, so a parked flyweight client can
        # be materialized by its own inbound traffic instead of the
        # datagram dropping.  One resolver for the whole population — no
        # per-client closures.
        self._lazy_resolver: Optional[Callable[[str], Optional["Endpoint"]]] = None
        # Route-through-cache hook (netcache tier): consulted per datagram
        # after loss, before destination resolution.  Returns the cache
        # endpoint that should receive the message *in place of* its
        # addressed destination, or None for the normal direct path.
        # ``msg.dst`` is left untouched — the cache node reads it as the
        # upstream server to forward misses to.  None (the default) adds
        # zero branches of consequence and zero RNG draws: golden traces
        # are bit-identical with the tier disabled.
        self._cache_router: Optional[Callable[[Message], Optional["Endpoint"]]] = None
        self._blocked: Set[Tuple[str, str]] = set()
        self.delivered_count = 0
        self.dropped_count = 0
        self.bytes_delivered = 0

    def bind_obs(self, obs: "Observability") -> None:
        """Mirror the fabric counters into a metrics registry.

        Uses callback gauges so the registry samples the live counters
        at read time — no double bookkeeping on the delivery hot path.
        """
        reg = obs.registry
        reg.gauge("net.ctrl.delivered", "Datagrams delivered",
                  ).labels().set_function(lambda: self.delivered_count)
        reg.gauge("net.ctrl.dropped", "Datagrams dropped or blocked",
                  ).labels().set_function(lambda: self.dropped_count)
        reg.gauge("net.ctrl.bytes_delivered", "Payload bytes delivered",
                  ).labels().set_function(lambda: self.bytes_delivered)

    # -- membership ---------------------------------------------------------
    def attach(self, endpoint: "Endpoint") -> None:
        """Register an endpoint under its node name."""
        if endpoint.name in self._endpoints:
            raise ValueError(f"duplicate endpoint {endpoint.name!r}")
        self._endpoints[endpoint.name] = endpoint

    def detach(self, name: str) -> None:
        """Forget an endpoint (a parked flyweight client's teardown)."""
        self._endpoints.pop(name, None)

    def set_lazy_resolver(
            self,
            resolver: Optional[Callable[[str], Optional["Endpoint"]]]) -> None:
        """Install the batch-registration resolver for unattached names.

        ``resolver(name)`` returns an endpoint (typically by
        materializing a parked client, whose constructor attaches it)
        or None for names outside the registered population.  Never
        consulted for already-attached names, so the default delivery
        path is untouched.
        """
        self._lazy_resolver = resolver

    def set_cache_router(
            self,
            router: Optional[Callable[[Message], Optional["Endpoint"]]]) -> None:
        """Install the route-through-cache attachment (netcache tier).

        ``router(msg)`` returns the interposed cache endpoint for
        cacheable read-path requests, or None to deliver directly.  The
        router must return None for dead cache nodes so a crashed cache
        degrades to plain forwarding — the sender's retry then reaches
        the authoritative server unmediated.
        """
        self._cache_router = router

    @property
    def node_names(self) -> List[str]:
        """All attached node names."""
        return list(self._endpoints)

    # -- reachability -------------------------------------------------------
    def block(self, src: str, dst: str) -> None:
        """Stop delivering src→dst datagrams (directional)."""
        self._blocked.add((src, dst))

    def unblock(self, src: str, dst: str) -> None:
        """Restore src→dst delivery."""
        self._blocked.discard((src, dst))

    def block_pair(self, a: str, b: str) -> None:
        """Symmetric cut between two nodes."""
        self.block(a, b)
        self.block(b, a)

    def unblock_pair(self, a: str, b: str) -> None:
        """Heal a symmetric cut."""
        self.unblock(a, b)
        self.unblock(b, a)

    def heal_all(self) -> None:
        """Remove every block."""
        self._blocked.clear()

    def reachable(self, src: str, dst: str) -> bool:
        """Whether a datagram sent now from src would arrive at dst."""
        return (src, dst) not in self._blocked

    def blocked_pairs(self) -> Set[Tuple[str, str]]:
        """Snapshot of directional blocks."""
        return set(self._blocked)

    # -- transmission ---------------------------------------------------------
    def _delay(self) -> float:
        if self.jitter <= 0:
            return self.base_delay
        return self.base_delay + float(self._rng.exponential(self.jitter))

    def transmit(self, msg: Message) -> None:
        """Send one datagram.  Loss and partitions silently drop it."""
        endpoints = self._endpoints
        sender = endpoints.get(msg.src)
        if sender is not None and not sender.alive:
            # A crashed node neither receives nor sends: processes that
            # were mid-request when it died just spin into the void.
            self.dropped_count += 1
            return
        trace = self.trace
        noop = trace._noop
        if not noop:
            trace.emit(self.sim._now, "msg.send", msg.src,
                       msg_kind=msg.kind, dst=msg.dst, msg_id=msg.msg_id,
                       seq=msg.seq)
        blocked = self._blocked
        if blocked and (msg.src, msg.dst) in blocked:
            self.dropped_count += 1
            if not noop:
                trace.emit(self.sim._now, "msg.blocked", msg.src,
                           dst=msg.dst, msg_kind=msg.kind)
            return
        if self.drop_probability > 0 and self._rng.random() < self.drop_probability:
            self.dropped_count += 1
            if not noop:
                trace.emit(self.sim._now, "msg.dropped", msg.src,
                           dst=msg.dst, msg_kind=msg.kind)
            return
        router = self._cache_router
        if router is not None:
            interposed = router(msg)
            if interposed is not None:
                _DeliveryEvent(self, msg, interposed, self._delay())
                return
        target = endpoints.get(msg.dst)
        if target is None:
            resolver = self._lazy_resolver
            if resolver is not None:
                target = resolver(msg.dst)
            if target is None:
                self.dropped_count += 1
                return
        _DeliveryEvent(self, msg, target, self._delay())


class Endpoint:
    """A node's attachment to the control network.

    Provides the paper's messaging discipline:

    - per-destination request sequence numbers and receiver-side
      *at-most-once* execution with cached replies (§3: "version numbers
      for at most once delivery semantics");
    - sender-side retry with local-clock timeouts, surfacing
      :class:`DeliveryError` after the policy is exhausted — the event
      that makes a server declare a client *suspect*;
    - ACK/NACK dispatch plus listener hooks the lease protocol uses
      (opportunistic renewal rides on every ACK, §3.1);
    - an optional *gatekeeper* consulted before any inbound request is
      executed — the server lease authority uses it to refuse ACKs and
      send NACKs while timing a client out (§3.3).
    """

    def __init__(self, sim: Simulator, net: ControlNetwork, name: str,
                 clock: LocalClock, trace: Optional[TraceRecorder] = None,
                 default_policy: Optional[RetryPolicy] = None,
                 dedup_capacity: int = 4096) -> None:
        self.sim = sim
        self.net = net
        self.name = name
        self.clock = clock
        self.trace = trace if trace is not None else net.trace
        self.default_policy = default_policy or RetryPolicy()
        self.alive = True
        # Lease-lapse attestation generation (§6 containment).  The
        # lease layer bumps this when a lease *expires locally* — i.e.
        # the node ran its expected-failure path (quiesce, flush, drop
        # cache and locks).  Requests created while it is non-zero carry
        # it as ``__lapse_gen__``, so a server that fenced this node can
        # distinguish "the old incarnation is still talking" (no new
        # attestation: keep the fence) from "the node observed its lapse
        # and discarded stale state" (safe to lift the fence).
        self.lapse_gen = 0
        # Observability bundle (set by node constructors / build_system);
        # None means no metrics/span recording on this endpoint.
        self.obs: Optional["Observability"] = None

        self._handlers: Dict[str, Handler] = {}
        self._gatekeeper: Optional[Callable[[Message], Optional[str]]] = None
        self._pending: Dict[int, Event] = {}
        self._pending_results: Dict[int, Event] = {}
        # Results that arrived before their pending-ACK (datagram reordering).
        self._early_results: Dict[int, Tuple[str, Dict[str, Any]]] = {}
        self._next_seq = 0
        self._dedup_capacity = dedup_capacity
        # (src, seq) -> ("done", decision, payload) | ("in_progress", None, None)
        self._executed: Dict[Tuple[str, int], Tuple[str, Optional[str], Optional[Dict[str, Any]]]] = {}
        self._executed_order: Deque[Tuple[str, int]] = deque()
        # Cached RPC latency histogram family (keyed by registry identity,
        # invalidated if the endpoint is re-bound to a different registry).
        self._rpc_hist: Optional["Metric"] = None
        self._rpc_hist_registry: Optional[object] = None
        self._rpc_count: Optional["Metric"] = None
        # Requests initiated through this endpoint, by message kind
        # (one count per logical RPC; retries share the count).  The
        # messages-per-op accounting divides these by completed ops.
        self.rpc_sent: Dict[str, int] = {}

        # Extra payload keys merged into transport-level *receipt* ACKs
        # (the ``__pending__`` acknowledgment of a deferred transaction).
        # Servers stamp their recovery epoch here: the receipt ACK
        # renews the sender's lease, so it must also carry the restart
        # signal — a client parked behind a deferred transaction (e.g. a
        # grant deferred into the post-restart grace window) otherwise
        # keeps a live lease while never learning the server restarted,
        # misses its reassertion window, and zombie-holds locks another
        # client can then legitimately re-acquire (§6).
        self.ack_stamp: Optional[Callable[[], Dict[str, Any]]] = None
        self.ack_listeners: List[Callable[[Message, float], None]] = []
        # Fired on a deferred transaction's *final* result, which never
        # passes through ``ack_listeners`` (the receipt ACK did, and the
        # completion is reconstructed locally from the RESULT payload).
        # The receipt already renewed the lease; finals only carry the
        # slow-path signals stamped into the payload, e.g. ``__epoch__``
        # — without this hook a client whose traffic is dominated by
        # deferred transactions never notices a server restart and never
        # reasserts its locks (§6).
        self.result_listeners: List[Callable[[Message, float], None]] = []
        self.nack_listeners: List[Callable[[Message], None]] = []
        self.delivery_failure_listeners: List[Callable[[str, Message], None]] = []

        net.attach(self)

    # -- configuration ---------------------------------------------------------
    def register(self, kind: str, handler: Handler) -> None:
        """Install the handler for an inbound request kind."""
        self._handlers[kind] = handler

    def set_gatekeeper(self, fn: Optional[Callable[[Message], Optional[str]]]) -> None:
        """Install the pre-execution gate (return ``"nack"``/``"silent"``/None)."""
        self._gatekeeper = fn

    def crash(self) -> None:
        """Stop receiving and lose volatile transport state.

        The replay (at-most-once) cache and deferred-result plumbing are
        in-memory: they die with the node.  Survivors re-polling a
        transaction that was in progress here will find no record and
        trigger a fresh execution after restart — exactly the recovery
        path §6's reassertion design expects.
        """
        self.alive = False
        self._executed.clear()
        self._executed_order.clear()
        self._pending_results.clear()
        self._early_results.clear()
        # Note: self._pending (reply events of *this node's own* in-flight
        # requests) is left intact.  The kernel cannot kill the arbitrary
        # processes driving those requests; their sends are suppressed
        # while the node is down, and letting the stragglers complete
        # after a restart is harmless — receivers treat them as ordinary
        # duplicates/late traffic.

    def restart(self) -> None:
        """Resume receiving after a crash."""
        self.alive = True

    def forget_peer(self, src: str) -> None:
        """Drop the at-most-once replay state kept for one peer.

        Called when the lease protocol *resolves* a peer (the τ(1+ε)
        suspect wait elapsed and its locks were stolen): the resolution
        is the protocol's declaration that the old incarnation is dead,
        so replay-cached results from it must not leak to a restarted
        incarnation that happens to reuse sequence numbers.  The stale
        keys left in the eviction order are popped harmlessly later.
        """
        dead = [key for key in self._executed if key[0] == src]
        for key in dead:
            del self._executed[key]

    # -- local time ---------------------------------------------------------
    def local_now(self) -> float:
        """This node's local-clock reading."""
        return self.clock.local_time(self.sim._now)

    def local_timeout(self, local_interval: float,
                      value: Any = None) -> Timeout:
        """A timeout measured on this node's local clock."""
        return Timeout(self.sim, self.clock.to_global_interval(local_interval), value)

    # -- sending ----------------------------------------------------------------
    def send_datagram(self, msg: Message) -> None:
        """Fire-and-forget transmit (used for ACK/NACK replies)."""
        self.net.transmit(msg)

    def request(self, dst: str, kind: str,
                payload: Optional[Dict[str, Any]] = None,
                policy: Optional[RetryPolicy] = None,
                ) -> Generator[Event, Any, Message]:
        """Send a request and wait for its ACK (process generator).

        Returns the ACK message.  Raises :class:`NackError` on NACK and
        :class:`DeliveryError` when every attempt times out.

        Every transmission — first send, retry, or pending re-poll — is a
        *fresh message initiation* under the lease contract: it gets its
        own msg_id and its own local send time, and an ACK renews from
        the send time of the exact attempt it answers (Fig. 3: t_C1 must
        provably precede the server's reply, which only holds for the
        matched attempt).  The receiver's at-most-once key is (src, seq),
        which all attempts share.
        """
        pol = policy or self.default_policy
        self._next_seq += 1
        self.rpc_sent[kind] = self.rpc_sent.get(kind, 0) + 1
        msg = Message(self.name, dst, kind,
                      dict(payload) if payload else {}, self._next_seq)
        if self.lapse_gen:
            # Attest the lapses this node has observed (and cleaned up
            # after).  Stamped at creation: a request initiated *before*
            # a lapse keeps its pre-lapse view across retries.
            msg.payload["__lapse_gen__"] = self.lapse_gen
        msg.sent_local_time = self.local_now()
        sim = self.sim
        pending = self._pending
        net = self.net
        reply_ev = Event(sim)
        attempt_times: Dict[int, float] = {}
        attempt_ids: List[int] = []

        obs = self.obs
        t0 = sim._now
        span = (obs.begin_span(t0, "net.rpc", self.name, msg_kind=kind, dst=dst)
                if obs is not None else None)
        try:
            attempt = msg
            for n in range(pol.attempts):
                # Each attempt is its own datagram object: earlier copies
                # may still be in flight and must keep their identity.
                if n:
                    attempt = Message(msg.src, msg.dst, msg.kind,
                                      msg.payload, msg.seq)
                sent_local = self.local_now()
                attempt.sent_local_time = sent_local
                mid = attempt.msg_id
                attempt_times[mid] = sent_local
                attempt_ids.append(mid)
                pending[mid] = reply_ev
                net.transmit(attempt)
                timeout_ev = Timeout(
                    sim, self.clock.to_global_interval(pol.timeout), None)
                winner = yield FirstOf(sim, (reply_ev, timeout_ev))
                if winner is reply_ev:
                    reply: Message = reply_ev._value
                    if reply.kind == _NACK:
                        for fn in self.nack_listeners:
                            fn(reply)
                        raise NackError(msg, reply)
                    renewal_time = attempt_times.get(reply.reply_to or -1,
                                                     msg.sent_local_time)
                    for fn in self.ack_listeners:
                        fn(reply, renewal_time)
                    if reply.payload.get("__pending__"):
                        final = yield from self._await_result(
                            msg, int(reply.payload["__ticket__"]), pol,
                            attempt_times, attempt_ids)
                        for fn in self.result_listeners:
                            fn(final, renewal_time)
                        self._rpc_done(span, kind, t0, "ack")
                        return final
                    self._rpc_done(span, kind, t0, "ack")
                    return reply
            for dfn in self.delivery_failure_listeners:
                dfn(dst, msg)
            raise DeliveryError(msg, pol.attempts)
        except NackError:
            self._rpc_done(span, kind, t0, "nack")
            raise
        except DeliveryError:
            self._rpc_done(span, kind, t0, "delivery_error")
            raise
        finally:
            for mid in attempt_ids:
                pending.pop(mid, None)

    def _rpc_done(self, span: Optional["Span"], kind: str, t0: float,
                  status: str) -> None:
        """Close a round-trip span and record its latency histogram."""
        obs = self.obs
        if obs is None:
            return
        if span is not None:
            span.end(self.sim._now, status=status)
        registry = obs.registry
        hist = self._rpc_hist
        count = self._rpc_count
        if hist is None or count is None \
                or self._rpc_hist_registry is not registry:
            hist = registry.histogram(
                "net.rpc.latency_s", "Request round-trip time (simulated s)",
                labels=("kind", "status"))
            count = registry.counter(
                "net.rpc.requests", "RPC round trips completed",
                labels=("kind", "status"))
            self._rpc_hist = hist
            self._rpc_count = count
            self._rpc_hist_registry = registry
        hist.labels(kind=kind, status=status).observe(self.sim._now - t0)
        count.labels(kind=kind, status=status).inc()

    def _fresh_result_event(self, ticket: int) -> Event:
        """Register a waiter for a deferred-transaction result, consuming
        any result that arrived ahead of its pending-ACK."""
        ev = Event(self.sim)
        early = self._early_results.pop(ticket, None)
        if early is not None:
            ev.succeed(early)
        self._pending_results[ticket] = ev
        return ev

    def _await_result(self, msg: Message, ticket: int, pol: RetryPolicy,
                      attempt_times: Dict[int, float],
                      attempt_ids: List[int],
                      ) -> Generator[Event, Any, Message]:
        """Wait for a deferred-transaction result, re-polling the server.

        While pending, the original datagram is periodically re-sent: a
        live server re-acknowledges "still pending" from its replay
        cache, while a *restarted* server (which lost the in-progress
        entry) re-executes the transaction under a fresh ticket.  The
        poll is what lets a client ride out a server crash instead of
        sleeping through the whole ``pending_timeout``.
        """
        sim = self.sim
        pending = self._pending
        result_ev = self._fresh_result_event(ticket)
        deadline_local = self.local_now() + pol.pending_timeout
        poll_local = max(pol.timeout * 2.0, 1e-6)
        try:
            while True:
                remaining = deadline_local - self.local_now()
                # Floor at a microsecond: a sub-epsilon remainder cannot
                # advance the float timeline and would spin forever.
                if remaining <= 1e-6:
                    raise DeliveryError(msg, pol.attempts)
                reply_ev = Event(sim)
                for mid in attempt_ids:
                    pending[mid] = reply_ev
                timeout_ev = self.local_timeout(
                    max(min(poll_local, remaining), 1e-6))
                winner = yield FirstOf(sim, (result_ev, reply_ev, timeout_ev))
                if winner is result_ev:
                    decision, payload = result_ev._value
                    if decision == "nack":
                        nack = Nack(msg.dst, self.name, msg.msg_id,
                                    payload=payload)
                        for fn in self.nack_listeners:
                            fn(nack)
                        raise NackError(msg, nack)
                    return Ack(msg.dst, self.name, msg.msg_id, payload=payload)
                if winner is reply_ev:
                    reply: Message = reply_ev._value
                    if reply.kind == _NACK:
                        for fn in self.nack_listeners:
                            fn(reply)
                        raise NackError(msg, reply)
                    renewal_time = attempt_times.get(reply.reply_to or -1,
                                                     msg.sent_local_time)
                    for fn in self.ack_listeners:
                        fn(reply, renewal_time)
                    if reply.payload.get("__pending__"):
                        new_ticket = int(reply.payload["__ticket__"])
                        if new_ticket != ticket:
                            self._pending_results.pop(ticket, None)
                            ticket = new_ticket
                            result_ev = self._fresh_result_event(ticket)
                        continue
                    return reply  # re-execution answered directly
                # Poll timeout: a fresh initiation nudging the server (its
                # ACK renews the lease from this new send time).
                poll_msg = Message(msg.src, msg.dst, msg.kind,
                                   msg.payload, msg.seq)
                poll_msg.sent_local_time = self.local_now()
                attempt_times[poll_msg.msg_id] = poll_msg.sent_local_time
                attempt_ids.append(poll_msg.msg_id)
                pending[poll_msg.msg_id] = reply_ev
                self.net.transmit(poll_msg)
        finally:
            self._pending_results.pop(ticket, None)

    # -- receiving -----------------------------------------------------------
    def _on_datagram(self, msg: Message) -> None:
        kind = msg.kind
        if kind == _ACK or kind == _NACK:
            ev = self._pending.get(msg.reply_to or -1)
            if ev is not None and not ev._triggered:
                ev.succeed(msg)
            # Replies to forgotten/duplicate requests are dropped silently.
            return
        self._on_request(msg)

    def _on_request(self, msg: Message) -> None:
        if self._gatekeeper is not None:
            verdict = self._gatekeeper(msg)
            if verdict == "nack":
                # A gatekeeper NACK is the §3.3 lease signal ("your cache
                # is invalid; I will not renew you") — distinct from an
                # application-level error reply, which must NOT make the
                # client abandon its lease.
                self.send_datagram(Nack(self.name, msg.src, msg.msg_id,
                                        payload={"__lease_nack__": True}))
                return
            if verdict == "silent":
                return

        if msg.kind == MsgKind.RESULT:
            self._h_result(msg)
            return

        key = (msg.src, msg.seq)
        cached = self._executed.get(key)
        if cached is not None:
            state, decision, payload = cached
            if state == "pending":
                # Re-acknowledge pending (the first pending ACK may be lost).
                self.send_datagram(Ack(self.name, msg.src, msg.msg_id,
                                       payload=self._pending_payload(decision)))
                return
            self._reply(msg, decision or "ack", payload)
            return

        handler = self._handlers.get(msg.kind)
        if handler is None:
            self.send_datagram(Nack(self.name, msg.src, msg.msg_id,
                                    payload={"error": f"no handler for {msg.kind}"}))
            return

        result = handler(msg)
        if hasattr(result, "send") and hasattr(result, "throw"):
            # Deferred transaction: ACK receipt now, deliver the outcome
            # later as a reliable server-initiated RESULT message.
            ticket = msg.msg_id
            self._remember(key, ("pending", ticket, None))
            self.send_datagram(Ack(self.name, msg.src, msg.msg_id,
                                   payload=self._pending_payload(ticket)))
            self.sim.process(self._run_deferred(key, msg, ticket, result),
                             name=f"{self.name}:{msg.kind}#{msg.seq}")
        else:
            decision, payload = self._normalize(result)
            self._remember(key, ("done", decision, payload))
            self._reply(msg, decision, payload)

    def _h_result(self, msg: Message) -> None:
        """Inbound deferred-transaction outcome (endpoint-level handler)."""
        ticket = int(msg.payload["__ticket__"])
        outcome = (msg.payload.get("__decision__", "ack"),
                   dict(msg.payload.get("__payload__") or {}))
        ev = self._pending_results.get(ticket)
        if ev is not None:
            if not ev._triggered:
                ev.succeed(outcome)
        else:
            # Reordered ahead of the pending ACK; park it for _await_result.
            self._early_results[ticket] = outcome
            if len(self._early_results) > 256:
                self._early_results.pop(next(iter(self._early_results)))
        # Always acknowledge so the sender's retries stop; duplicates and
        # results for abandoned requests are acknowledged-and-dropped.
        self.send_datagram(Ack(self.name, msg.src, msg.msg_id))

    def _run_deferred(self, key: Tuple[str, int], msg: Message, ticket: int,
                      gen: Generator[Event, Any, Any]) -> Generator[Event, Any, None]:
        proc = self.sim.process(gen, name=f"{self.name}:handler:{msg.kind}")
        try:
            result = yield proc
            decision, payload = self._normalize(result)
        except Exception as exc:
            decision, payload = "nack", {"error": repr(exc)}
        self._executed[key] = ("done", decision, payload)
        # Reliable delivery of the outcome; a delivery failure here feeds
        # the authority's suspect machinery like any server-initiated
        # message (the requester may have partitioned while waiting).
        def send_result() -> Generator[Event, Any, None]:
            try:
                yield from self.request(msg.src, MsgKind.RESULT,
                                        {"__ticket__": ticket,
                                         "__decision__": decision,
                                         "__payload__": payload})
            except (DeliveryError, NackError):
                pass
        self.sim.process(send_result(), name=f"{self.name}:result#{ticket}")

    @staticmethod
    def _normalize(result: Any) -> HandlerResult:
        if result is None:
            return ("ack", {})
        if isinstance(result, tuple) and len(result) == 2:
            return (result[0], result[1] or {})
        raise TypeError(f"handler returned invalid decision {result!r}")

    def _pending_payload(self, ticket: Any) -> Dict[str, Any]:
        """Receipt-ACK payload for a deferred transaction, including any
        node-level stamp (servers carry ``__epoch__`` so the ACK that
        renews a parked client's lease also proves the incarnation)."""
        payload: Dict[str, Any] = {"__pending__": True, "__ticket__": ticket}
        if self.ack_stamp is not None:
            payload.update(self.ack_stamp())
        return payload

    def _reply(self, msg: Message, decision: str, payload: Optional[Dict[str, Any]]) -> None:
        if decision == "ack":
            self.send_datagram(Ack(self.name, msg.src, msg.msg_id, payload=payload))
        elif decision == "nack":
            self.send_datagram(Nack(self.name, msg.src, msg.msg_id, payload=payload))
        elif decision == "silent":
            pass
        else:
            raise ValueError(f"unknown handler decision {decision!r}")

    def _remember(self, key: Tuple[str, int],
                  entry: Tuple[str, Any, Any]) -> None:
        executed = self._executed
        if key not in executed:
            order = self._executed_order
            order.append(key)
            if len(order) > self._dedup_capacity:
                executed.pop(order.popleft(), None)
        executed[key] = entry
