"""The storage area network fabric.

Connects initiators (clients and servers) to storage devices.  The
fabric models transfer latency, fabric-level fencing (switch zoning —
the alternative fencing point the paper mentions in §1.2), and SAN
partitions, which are independent of control-network partitions: that
independence is exactly what creates the paper's two-network problem.

Device-level fencing lives on the disks themselves
(:class:`repro.storage.fencing.FenceTable`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Set, Tuple

from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder
from repro.storage.blockmap import BLOCK_SIZE
from repro.storage.disk import DiskReadResult, FencedIoError, VirtualDisk

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.obs import Observability

# Re-exported under the transport-flavoured name used by callers.
FencedError = FencedIoError


class SanUnreachableError(Exception):
    """The fabric cannot route between initiator and device (SAN partition
    or fabric-level fence)."""

    def __init__(self, initiator: str, device: str) -> None:
        super().__init__(f"SAN path {initiator} -> {device} unavailable")
        self.initiator = initiator
        self.device = device


class SanFabric:
    """Block-I/O transport between initiators and devices."""

    def __init__(self, sim: Simulator, streams: RandomStreams,
                 trace: Optional[TraceRecorder] = None,
                 base_latency: float = 0.0005,
                 per_block_latency: float = 0.00005,
                 per_device_queueing: bool = False) -> None:
        """``per_device_queueing=True`` serializes commands at each
        device (single-server queue): concurrent I/O to one disk waits
        its turn, which is what makes the disk — not the metadata
        server — the throughput ceiling of the direct-access model."""
        self.sim = sim
        self.trace = trace if trace is not None else TraceRecorder(
            enabled=False, counting=False)
        self.base_latency = base_latency
        self.per_block_latency = per_block_latency
        self.per_device_queueing = per_device_queueing
        self._busy_until: Dict[str, float] = {}
        self.queue_wait_total = 0.0
        self._rng = streams.get("net.san")
        self._devices: Dict[str, VirtualDisk] = {}
        self._initiators: Set[str] = set()
        self._blocked: Set[Tuple[str, str]] = set()
        self._fabric_fenced: Set[str] = set()
        self.bytes_read = 0
        self.bytes_written = 0
        self.io_count = 0

    def bind_obs(self, obs: "Observability") -> None:
        """Mirror the fabric counters into a metrics registry.

        Callback gauges sample the live counters at read time, keeping
        the block-I/O hot path free of extra bookkeeping.
        """
        reg = obs.registry
        reg.gauge("san.bytes_read", "Bytes read over the SAN",
                  ).labels().set_function(lambda: self.bytes_read)
        reg.gauge("san.bytes_written", "Bytes written over the SAN",
                  ).labels().set_function(lambda: self.bytes_written)
        reg.gauge("san.io_count", "SAN I/O commands issued",
                  ).labels().set_function(lambda: self.io_count)
        reg.gauge("san.queue_wait_s", "Total device queueing wait",
                  ).labels().set_function(lambda: self.queue_wait_total)

    # -- membership ---------------------------------------------------------
    def attach_device(self, disk: VirtualDisk) -> None:
        """Register a storage device on the fabric."""
        if disk.name in self._devices:
            raise ValueError(f"duplicate device {disk.name!r}")
        self._devices[disk.name] = disk

    def attach_initiator(self, name: str) -> None:
        """Register a computer that may issue block I/O."""
        self._initiators.add(name)

    def detach_initiator(self, name: str) -> None:
        """Forget an initiator (a parked flyweight client's teardown)."""
        self._initiators.discard(name)

    def device(self, name: str) -> VirtualDisk:
        """Look up an attached device."""
        return self._devices[name]

    @property
    def devices(self) -> Dict[str, VirtualDisk]:
        """All attached devices by name."""
        return dict(self._devices)

    @property
    def node_names(self) -> List[str]:
        """Initiators and devices (partition controller interface)."""
        return sorted(self._initiators) + sorted(self._devices)

    # -- reachability / zoning ---------------------------------------------
    def block(self, src: str, dst: str) -> None:
        """Cut one direction of a path (SAN partitions are modelled per
        unordered pair; both directions are checked on I/O)."""
        self._blocked.add((src, dst))

    def unblock(self, src: str, dst: str) -> None:
        """Restore one direction of a path."""
        self._blocked.discard((src, dst))

    def block_pair(self, a: str, b: str) -> None:
        """Cut the path between an initiator and a device."""
        self.block(a, b)
        self.block(b, a)

    def unblock_pair(self, a: str, b: str) -> None:
        """Heal the path between two endpoints."""
        self.unblock(a, b)
        self.unblock(b, a)

    def heal_all(self) -> None:
        """Remove all SAN partitions (fabric fences persist)."""
        self._blocked.clear()

    def reachable(self, src: str, dst: str) -> bool:
        """Whether the fabric currently routes src→dst."""
        if src in self._fabric_fenced or dst in self._fabric_fenced:
            return False
        return (src, dst) not in self._blocked

    def fence_at_fabric(self, initiator: str) -> None:
        """Switch-level fence: the initiator loses all SAN connectivity."""
        self._fabric_fenced.add(initiator)

    def unfence_at_fabric(self, initiator: str) -> None:
        """Lift a switch-level fence."""
        self._fabric_fenced.discard(initiator)

    # -- I/O ------------------------------------------------------------------
    def _latency(self, n_blocks: int) -> float:
        jitter = float(self._rng.exponential(self.base_latency * 0.2)) if self.base_latency else 0.0
        return self.base_latency + self.per_block_latency * n_blocks + jitter

    def _delay_for(self, device: str, n_blocks: int) -> float:
        """Total wait for one command: service time, plus queueing
        behind whatever the device is already committed to."""
        service = self._latency(n_blocks)
        if not self.per_device_queueing:
            return service
        now = self.sim.now
        start = max(now, self._busy_until.get(device, now))
        self.queue_wait_total += start - now
        self._busy_until[device] = start + service
        return (start + service) - now

    def _route_check(self, initiator: str, device: str) -> VirtualDisk:
        disk = self._devices.get(device)
        if disk is None:
            raise KeyError(f"unknown device {device!r}")
        if not self.reachable(initiator, device) or not self.reachable(device, initiator):
            self.trace.emit(self.sim.now, "san.unreachable", initiator, device=device)
            raise SanUnreachableError(initiator, device)
        return disk

    def write(self, initiator: str, device: str, block_tags: Dict[int, str],
              ) -> Generator[Event, None, Dict[int, int]]:
        """Write tagged blocks, returning per-lba disk versions.

        Raises :class:`SanUnreachableError` on partition/zone failures
        and :class:`FencedError` if the device fences the initiator.
        """
        disk = self._route_check(initiator, device)
        yield self.sim.timeout(self._delay_for(device, len(block_tags)))
        # Fences and partitions are evaluated at the instant the command
        # reaches the device, not at submission (late commands from slow
        # computers hit the fence — paper §6).
        self._route_check(initiator, device)
        versions = disk.write(initiator, self.sim.now, block_tags)
        self.io_count += 1
        self.bytes_written += len(block_tags) * BLOCK_SIZE
        trace = self.trace
        if not trace._noop:
            trace.emit(self.sim.now, "san.write", initiator, device=device,
                       n_blocks=len(block_tags))
        return versions

    def read(self, initiator: str, device: str, lba: int, count: int = 1,
             ) -> Generator[Event, None, List[DiskReadResult]]:
        """Read blocks (process generator returning the block records)."""
        disk = self._route_check(initiator, device)
        yield self.sim.timeout(self._delay_for(device, count))
        self._route_check(initiator, device)
        result = disk.read(initiator, self.sim.now, lba, count)
        self.io_count += 1
        self.bytes_read += count * BLOCK_SIZE
        trace = self.trace
        if not trace._noop:
            trace.emit(self.sim.now, "san.read", initiator, device=device,
                       n_blocks=count)
        return result

    def dlock_acquire(self, initiator: str, device: str, start_lba: int,
                      length: int, ttl: float, device_now: float,
                      ) -> Generator[Event, None, None]:
        """Issue a GFS-style dlock command to the device (§5 baseline)."""
        disk = self._route_check(initiator, device)
        yield self.sim.timeout(self._latency(1))
        self._route_check(initiator, device)
        disk.dlocks.acquire(initiator, start_lba, length, ttl, device_now)

    def dlock_release(self, initiator: str, device: str, start_lba: int,
                      length: int, device_now: float,
                      ) -> Generator[Event, None, None]:
        """Release a dlock range at the device."""
        disk = self._route_check(initiator, device)
        yield self.sim.timeout(self._latency(1))
        self._route_check(initiator, device)
        disk.dlocks.release(initiator, start_lba, length, device_now)
