"""The server's private metadata store.

Ties the namespace, inode table and extent allocator together and
counts every operation — the paper (§1.1) characterizes the Storage
Tank server as transaction-bound ("frequent small reads and writes" on
its private store), and experiment E1 reports these counters.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.metadata.allocator import ExtentAllocator
from repro.metadata.directory import Directory, NamespaceError
from repro.metadata.inode import FileAttributes, Inode
from repro.storage.blockmap import BLOCK_SIZE, bytes_to_blocks


class MetadataStore:
    """Namespace + inodes + allocation, with transaction counters."""

    def __init__(self, id_base: int = 0) -> None:
        """``id_base`` offsets generated file ids so that ids from
        different servers never collide (multi-server installations)."""
        self.namespace = Directory()
        self.allocator = ExtentAllocator()
        self._inodes: Dict[int, Inode] = {}
        self._ids = itertools.count(id_base + 1)
        self.ops = 0          # metadata transactions executed
        self.meta_reads = 0   # private-store reads
        self.meta_writes = 0  # private-store writes

    # -- files ------------------------------------------------------------
    def create_file(self, path: str, size: int = 0, now: float = 0.0) -> Inode:
        """Create a file, allocating SAN blocks to back ``size`` bytes."""
        self.ops += 1
        self.meta_writes += 1
        fid = next(self._ids)
        inode = Inode(file_id=fid)
        inode.set_size(size, now)
        blocks = bytes_to_blocks(size)
        if blocks:
            for ext in self.allocator.allocate(blocks):
                inode.extents.append(ext)
        self._inodes[fid] = inode
        self.namespace.create(path, fid)
        return inode

    def lookup(self, path: str) -> Inode:
        """Resolve a path to its inode."""
        self.ops += 1
        self.meta_reads += 1
        return self._inodes[self.namespace.lookup(path)]

    def inode(self, file_id: int) -> Inode:
        """Fetch an inode by id."""
        self.meta_reads += 1
        ino = self._inodes.get(file_id)
        if ino is None:
            raise NamespaceError(f"no inode {file_id}")
        return ino

    def exists(self, path: str) -> bool:
        """Whether the path resolves."""
        return self.namespace.exists(path)

    def ensure_size(self, file_id: int, size: int, now: float) -> Inode:
        """Grow a file to ``size`` bytes, allocating blocks as needed."""
        self.ops += 1
        self.meta_writes += 1
        ino = self.inode(file_id)
        extra = ino.needs_allocation(size)
        if extra:
            for ext in self.allocator.allocate(extra):
                ino.extents.append(ext)
        if size > ino.attrs.size:
            ino.set_size(size, now)
        else:
            ino.touch(now)
        return ino

    def set_attrs(self, file_id: int, now: float, size: Optional[int] = None,
                  mode: Optional[int] = None) -> Inode:
        """Setattr transaction."""
        self.ops += 1
        self.meta_writes += 1
        ino = self.inode(file_id)
        if size is None and mode is None:
            ino.touch(now)  # bare setattr = utimes-style version bump
        if size is not None:
            if size > ino.attrs.size:
                return self.ensure_size(file_id, size, now)
            ino.set_size(size, now)
        if mode is not None:
            ino.attrs = FileAttributes(size=ino.attrs.size, mtime=now,
                                       ctime=ino.attrs.ctime, mode=mode,
                                       version=ino.attrs.version + 1)
        return ino

    def unlink(self, path: str) -> None:
        """Remove a file and free its extents."""
        self.ops += 1
        self.meta_writes += 1
        fid = self.namespace.unlink(path)
        ino = self._inodes.pop(fid, None)
        if ino is not None and ino.extents.extents:
            self.allocator.free(ino.extents.extents)

    @property
    def file_count(self) -> int:
        """Number of live inodes."""
        return len(self._inodes)
