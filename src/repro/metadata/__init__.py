"""Server-private file system metadata (paper §1.1).

Metadata and data are stored separately: the shared SAN disks hold only
file data blocks, while inodes, the namespace and block locations live
on the server's private high-performance store.  Clients obtain metadata
— in particular each file's :class:`~repro.storage.blockmap.ExtentMap`
— over the control network, then perform data I/O directly to the SAN.

Metadata is only *weakly consistent* across clients (paper §3 footnote):
a modification by one process is guaranteed to reach other processes'
views eventually, never instantaneously.  Each inode carries a version
counter so staleness is observable.
"""

from repro.metadata.allocator import AllocationError, ExtentAllocator
from repro.metadata.directory import Directory, NamespaceError
from repro.metadata.inode import FileAttributes, Inode
from repro.metadata.store import MetadataStore

__all__ = [
    "AllocationError",
    "Directory",
    "ExtentAllocator",
    "FileAttributes",
    "Inode",
    "MetadataStore",
    "NamespaceError",
]
