"""Extent allocation on the shared SAN disks.

The server allocates file data blocks (paper §1.1: servers "run
distributed protocols for ... the allocation of file data").  A next-fit
cursor per device with round-robin across devices keeps files spread
over the SAN, and a free list accepts deallocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.storage.blockmap import Extent


class AllocationError(Exception):
    """No device can satisfy the request."""


@dataclass
class _DeviceSpace:
    capacity: int
    base: int = 0          # first lba this allocator owns on the device
    cursor: int = 0        # relative to base
    free_runs: Optional[List[Tuple[int, int]]] = None  # absolute (start, length)

    def __post_init__(self) -> None:
        if self.free_runs is None:
            self.free_runs = []

    @property
    def remaining_fresh(self) -> int:
        return self.capacity - self.cursor

    @property
    def total_free(self) -> int:
        assert self.free_runs is not None
        return self.remaining_fresh + sum(l for _s, l in self.free_runs)


class ExtentAllocator:
    """Round-robin next-fit allocator over multiple devices."""

    def __init__(self) -> None:
        self._devices: Dict[str, _DeviceSpace] = {}
        self._order: List[str] = []
        self._next_device = 0
        self.allocated_blocks = 0
        self.freed_blocks = 0

    def add_device(self, name: str, capacity_blocks: int,
                   base_lba: int = 0) -> None:
        """Register a device's block space with the allocator.

        ``base_lba`` lets several allocators (one per server) own
        disjoint regions of the same shared disk.
        """
        if name in self._devices:
            raise ValueError(f"duplicate device {name!r}")
        if capacity_blocks <= 0:
            raise ValueError("capacity must be positive")
        if base_lba < 0:
            raise ValueError("base_lba must be non-negative")
        self._devices[name] = _DeviceSpace(capacity=capacity_blocks,
                                           base=base_lba)
        self._order.append(name)

    @property
    def total_free_blocks(self) -> int:
        """Free blocks across all devices."""
        return sum(d.total_free for d in self._devices.values())

    def allocate(self, n_blocks: int) -> List[Extent]:
        """Allocate ``n_blocks``, possibly as multiple extents.

        Raises :class:`AllocationError` if total free space is short.
        """
        if n_blocks <= 0:
            raise ValueError(f"n_blocks must be positive, got {n_blocks}")
        if not self._order:
            raise AllocationError("no devices registered")
        if self.total_free_blocks < n_blocks:
            raise AllocationError(f"need {n_blocks} blocks, "
                                  f"{self.total_free_blocks} free")
        out: List[Extent] = []
        remaining = n_blocks
        attempts = 0
        while remaining > 0:
            dev_name = self._order[self._next_device % len(self._order)]
            self._next_device += 1
            attempts += 1
            space = self._devices[dev_name]
            got = self._alloc_on(dev_name, space, remaining)
            if got is not None:
                out.append(got)
                remaining -= got.length
                attempts = 0
            elif attempts >= len(self._order):
                # One full round with no progress — should be unreachable
                # given the total_free check, kept as a safety net.
                raise AllocationError("allocator made no progress")
        self.allocated_blocks += n_blocks
        return out

    def _alloc_on(self, name: str, space: _DeviceSpace, want: int) -> Optional[Extent]:
        assert space.free_runs is not None
        # Prefer recycled runs.
        for i, (start, length) in enumerate(space.free_runs):
            take = min(length, want)
            if take == length:
                space.free_runs.pop(i)
            else:
                space.free_runs[i] = (start + take, length - take)
            return Extent(device=name, start_lba=start, length=take)
        take = min(space.remaining_fresh, want)
        if take <= 0:
            return None
        ext = Extent(device=name, start_lba=space.base + space.cursor,
                     length=take)
        space.cursor += take
        return ext

    def free(self, extents: List[Extent]) -> None:
        """Return extents to their devices' free lists."""
        for ext in extents:
            space = self._devices.get(ext.device)
            if space is None:
                raise KeyError(f"unknown device {ext.device!r}")
            assert space.free_runs is not None
            space.free_runs.append((ext.start_lba, ext.length))
            self.freed_blocks += ext.length
