"""Inodes: per-file metadata records."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.storage.blockmap import BLOCK_SIZE, ExtentMap


@dataclass(frozen=True)
class FileAttributes:
    """The externally visible attribute set (getattr/setattr payload)."""

    size: int = 0
    mtime: float = 0.0
    ctime: float = 0.0
    mode: int = 0o644
    version: int = 0

    def to_payload(self) -> Dict[str, float]:
        """Wire form for control-network replies."""
        return {"size": self.size, "mtime": self.mtime, "ctime": self.ctime,
                "mode": self.mode, "version": self.version}

    @staticmethod
    def from_payload(p: Dict) -> "FileAttributes":
        """Parse the wire form."""
        return FileAttributes(size=int(p["size"]), mtime=float(p["mtime"]),
                              ctime=float(p["ctime"]), mode=int(p["mode"]),
                              version=int(p["version"]))


@dataclass
class Inode:
    """One file's full metadata record on the server's private store."""

    file_id: int
    attrs: FileAttributes = field(default_factory=FileAttributes)
    extents: ExtentMap = field(default_factory=ExtentMap)
    nlink: int = 1

    @property
    def allocated_bytes(self) -> int:
        """Capacity currently mapped to SAN blocks."""
        return self.extents.size_bytes

    def touch(self, now: float) -> None:
        """Bump mtime and the metadata version counter."""
        self.attrs = replace(self.attrs, mtime=now, version=self.attrs.version + 1)

    def set_size(self, size: int, now: float) -> None:
        """Record a new logical size (allocation is the allocator's job)."""
        if size < 0:
            raise ValueError(f"negative size {size}")
        self.attrs = replace(self.attrs, size=size, mtime=now,
                             version=self.attrs.version + 1)

    def needs_allocation(self, size: int) -> int:
        """Additional blocks required to back ``size`` bytes, or 0."""
        need = (size + BLOCK_SIZE - 1) // BLOCK_SIZE
        have = self.extents.block_count
        return max(0, need - have)
