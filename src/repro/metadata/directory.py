"""A flat hierarchical namespace mapping paths to file ids."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional


class NamespaceError(Exception):
    """Lookup/create/unlink failure in the namespace."""


def _normalize(path: str) -> str:
    if not path or not path.startswith("/"):
        raise NamespaceError(f"paths must be absolute, got {path!r}")
    parts = [p for p in path.split("/") if p]
    return "/" + "/".join(parts)


class Directory:
    """Path → file-id namespace with implicit directories.

    Storage Tank's namespace lives on the server's private store; clients
    never parse directories themselves, they send lookups over the
    control network.  Implicit directories keep the model small while
    still letting workloads use realistic hierarchical paths.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, int] = {}

    def create(self, path: str, file_id: int) -> None:
        """Bind a path to a file id."""
        norm = _normalize(path)
        if norm in self._entries:
            raise NamespaceError(f"path exists: {norm}")
        self._entries[norm] = file_id

    def lookup(self, path: str) -> int:
        """Resolve a path or raise :class:`NamespaceError`."""
        norm = _normalize(path)
        fid = self._entries.get(norm)
        if fid is None:
            raise NamespaceError(f"no such file: {norm}")
        return fid

    def exists(self, path: str) -> bool:
        """Whether the path is bound."""
        return _normalize(path) in self._entries

    def unlink(self, path: str) -> int:
        """Remove a binding, returning the file id it had."""
        norm = _normalize(path)
        try:
            return self._entries.pop(norm)
        except KeyError:
            raise NamespaceError(f"no such file: {norm}") from None

    def listdir(self, prefix: str = "/") -> List[str]:
        """Paths directly under a directory prefix."""
        norm = _normalize(prefix)
        base = norm if norm.endswith("/") else norm + "/"
        if norm == "/":
            base = "/"
        seen = set()
        for p in self._entries:
            if p.startswith(base):
                rest = p[len(base):]
                seen.add(base + rest.split("/")[0])
        return sorted(seen)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))
