"""Server-side lock table.

Pure data-structure logic: the surrounding server node is responsible
for messaging (demanding locks back from holders over the control
network) and for *when* stealing is safe (the lease authority's job).
The manager records every grant/release/steal with a timestamp — that
history is one input of the offline consistency audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.locks.modes import LockMode, compatible, satisfies
from repro.locks.ranges import ByteRange, RangeLockManager


@dataclass(frozen=True)
class LockGrant:
    """One entry of the lock history."""

    time: float
    op: str          # "grant" | "release" | "steal" | "downgrade"
    obj: int
    client: str
    mode: LockMode


@dataclass
class _Waiter:
    client: str
    mode: LockMode
    callback: Callable[[int, LockMode], None]


# ---------------------------------------------------------------------------
# intent-grant policies (Lustre-style, PAPERS.md)
# ---------------------------------------------------------------------------
class GrantPolicy:
    """How much an intent request is granted beyond what it asked for.

    The base policy is *grant-what-was-asked*: no widening, no
    coalescing — the intent RPC still saves its round trip (op rides
    the lock request) but every byte granted was explicitly requested.
    Policies may only widen or merge grants, never narrow or refuse
    them: safety stays with the lock tables and the lease discipline,
    which see exactly the same ``try_acquire`` calls either way.
    """

    name = "as-asked"

    def widen_range(self, ranges: RangeLockManager, client: str, obj: int,
                    rng: ByteRange, mode: LockMode,
                    size_bytes: int) -> ByteRange:
        """The range actually granted for a requested range (>= ``rng``)."""
        return rng

    def coalesce(self, requests: List[Tuple[ByteRange, LockMode]],
                 ) -> List[Tuple[ByteRange, LockMode]]:
        """Merge a batch of range requests from one client into the
        spans actually acquired (>= the union of the requests)."""
        return list(requests)


class BatchAdjacentPolicy(GrantPolicy):
    """Merge adjacent/overlapping same-mode ranges of one batch into
    single grants — one interval-list entry and one waiter queue slot
    per contiguous run instead of one per sub-request."""

    name = "batch-adjacent"

    def coalesce(self, requests: List[Tuple[ByteRange, LockMode]],
                 ) -> List[Tuple[ByteRange, LockMode]]:
        """Merge adjacent/overlapping same-mode request runs."""
        ordered = sorted(requests, key=lambda t: (t[0].start, t[0].end))
        merged: List[Tuple[ByteRange, LockMode]] = []
        for rng, mode in ordered:
            if (merged and merged[-1][1] == mode
                    and merged[-1][0].end >= rng.start):
                prev_rng, prev_mode = merged.pop()
                merged.append((ByteRange(prev_rng.start,
                                         max(prev_rng.end, rng.end)),
                               prev_mode))
            else:
                merged.append((rng, mode))
        return merged


class WidenToExtentPolicy(BatchAdjacentPolicy):
    """Extent-based grants: when nobody else holds or awaits the object,
    a range request is widened to the whole file extent, so the next
    request from the same client is already covered.  Batching is
    inherited.  Under contention (any other holder or waiter) the
    policy degrades to batch-adjacent — widening would only
    manufacture false sharing."""

    name = "widen-to-extent"

    def widen_range(self, ranges: RangeLockManager, client: str, obj: int,
                    rng: ByteRange, mode: LockMode,
                    size_bytes: int) -> ByteRange:
        """Widen to ``[0, max(end, size))`` when the object is uncontended."""
        if ranges.other_interest(client, obj):
            return rng
        end = max(rng.end, size_bytes)
        return ByteRange(0, end)


#: Registry of grant policies by name (``ServerConfig.grant_policy``).
GRANT_POLICIES: Dict[str, GrantPolicy] = {
    p.name: p for p in (GrantPolicy(), BatchAdjacentPolicy(),
                        WidenToExtentPolicy())
}

#: Valid policy names, for config validation without importing us early.
GRANT_POLICY_NAMES: Tuple[str, ...] = tuple(GRANT_POLICIES)


def grant_policy(name: str) -> GrantPolicy:
    """Resolve a grant policy by name (ValueError on unknown)."""
    try:
        return GRANT_POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown grant policy {name!r}; "
                         f"choose one of {GRANT_POLICY_NAMES}") from None


class LockManager:
    """Lock table with FIFO waiter queues."""

    def __init__(self, now_fn: Callable[[], float]):
        self._now = now_fn
        # obj -> {client -> mode}
        self._holders: Dict[int, Dict[str, LockMode]] = {}
        self._waiters: Dict[int, List[_Waiter]] = {}
        self.history: List[LockGrant] = []
        self.grants = 0
        self.steals = 0
        # Observers (the V-lease authority tracks per-object leases here).
        self.grant_listeners: List[Callable[[str, int, LockMode], None]] = []
        self.release_listeners: List[Callable[[str, int], None]] = []

    def bind_obs(self, obs, node: str) -> None:
        """Mirror grant/steal counts into a metrics registry as callback
        gauges labelled with the owning server's node name."""
        reg = obs.registry
        reg.gauge("locks.grants", "Lock grants issued", labels=("node",),
                  ).labels(node=node).set_function(lambda: self.grants)
        reg.gauge("locks.steals", "Lock steals executed", labels=("node",),
                  ).labels(node=node).set_function(lambda: self.steals)
        reg.gauge("locks.held_objects", "Objects with at least one holder",
                  labels=("node",),
                  ).labels(node=node).set_function(
                      lambda: sum(1 for h in self._holders.values() if h))

    # -- queries ------------------------------------------------------------
    def holders(self, obj: int) -> Dict[str, LockMode]:
        """Current holders of an object."""
        return dict(self._holders.get(obj, {}))

    def mode_of(self, client: str, obj: int) -> LockMode:
        """The mode ``client`` holds on ``obj`` (NONE if none)."""
        return self._holders.get(obj, {}).get(client, LockMode.NONE)

    def objects_held_by(self, client: str) -> List[Tuple[int, LockMode]]:
        """Everything a client currently holds."""
        out = []
        for obj, holders in self._holders.items():
            m = holders.get(client)
            if m:
                out.append((obj, m))
        return out

    def conflicts_for(self, client: str, obj: int, mode: LockMode,
                      ) -> List[Tuple[str, LockMode]]:
        """Holders that must yield before ``client`` can get ``mode``."""
        out = []
        for holder, held in self._holders.get(obj, {}).items():
            if holder != client and not compatible(held, mode):
                out.append((holder, held))
        return out

    def waiter_count(self, obj: int) -> int:
        """Length of the wait queue for an object."""
        return len(self._waiters.get(obj, []))

    def waiting(self, obj: int) -> List[Tuple[str, LockMode]]:
        """(client, mode) for every queued waiter, in queue order."""
        return [(w.client, w.mode) for w in self._waiters.get(obj, [])]

    # -- mutation --------------------------------------------------------------
    def try_acquire(self, client: str, obj: int, mode: LockMode,
                    ) -> Tuple[bool, List[Tuple[str, LockMode]]]:
        """Grant immediately if compatible; otherwise report conflicts.

        Re-requests of an already-satisfied mode succeed idempotently.
        A grant also requires no *earlier waiter* to exist (to avoid
        starving queued requests behind opportunistic ones).
        """
        if mode == LockMode.NONE:
            raise ValueError("cannot acquire LockMode.NONE")
        held = self.mode_of(client, obj)
        if satisfies(held, mode):
            return (True, [])
        conflicts = self.conflicts_for(client, obj, mode)
        queued = [w for w in self._waiters.get(obj, []) if w.client != client]
        if not conflicts and not queued:
            self._grant(client, obj, mode)
            return (True, [])
        return (False, conflicts)

    def enqueue_waiter(self, client: str, obj: int, mode: LockMode,
                       callback: Callable[[int, LockMode], None]) -> None:
        """Queue a blocked request; ``callback(obj, mode)`` fires on grant."""
        self._waiters.setdefault(obj, []).append(_Waiter(client, mode, callback))

    def cancel_waiter(self, client: str, obj: int) -> bool:
        """Drop a queued request (client gave up); True if one existed."""
        q = self._waiters.get(obj, [])
        for i, w in enumerate(q):
            if w.client == client:
                q.pop(i)
                return True
        return False

    def release(self, client: str, obj: int) -> bool:
        """Give back a lock voluntarily; wakes compatible waiters."""
        holders = self._holders.get(obj, {})
        mode = holders.pop(client, None)
        if mode is None:
            return False
        self.history.append(LockGrant(self._now(), "release", obj, client, mode))
        if not holders:
            self._holders.pop(obj, None)
        for fn in self.release_listeners:
            fn(client, obj)
        self._pump(obj)
        return True

    def downgrade(self, client: str, obj: int, to: LockMode) -> bool:
        """Weaken a held lock (X→S); wakes compatible waiters."""
        holders = self._holders.get(obj, {})
        held = holders.get(client)
        if held is None or to >= held or to == LockMode.NONE:
            return False
        holders[client] = to
        self.history.append(LockGrant(self._now(), "downgrade", obj, client, to))
        self._pump(obj)
        return True

    def steal_all(self, client: str) -> List[Tuple[int, LockMode]]:
        """Stop honoring every lock the client holds (paper §1.2).

        Safe only when the lease authority says so.  Waiters on the
        freed objects are granted immediately.
        """
        stolen = self.objects_held_by(client)
        now = self._now()
        for obj, mode in stolen:
            holders = self._holders.get(obj, {})
            holders.pop(client, None)
            if not holders:
                self._holders.pop(obj, None)
            self.history.append(LockGrant(now, "steal", obj, client, mode))
            self.steals += 1
            for fn in self.release_listeners:
                fn(client, obj)
        # Drop the client's queued requests too; then wake waiters.
        for obj, _mode in stolen:
            self._pump(obj)
        for obj in list(self._waiters):
            self.cancel_waiter(client, obj)
        return stolen

    def clear_volatile(self, now: float = 0.0) -> None:
        """Server crash: all holdings and waiters are lost (history —
        audit ground truth — survives, as it would on an external
        observer).  Release listeners fire so per-object lease tables
        clean up too."""
        for obj, holders in list(self._holders.items()):
            for client in list(holders):
                for fn in self.release_listeners:
                    fn(client, obj)
        self._holders.clear()
        self._waiters.clear()

    def export_holdings(self, objs: Iterable[int],
                        ) -> List[Tuple[int, str, LockMode]]:
        """Hand the live holdings on ``objs`` to another lock manager.

        Used for graceful slot handoff (cluster failback/rebalancing):
        an ownership *transfer*, not a release — holders keep their
        locks at the new owner, so no release/steal history event is
        recorded (the audit's open-interval reconstruction then covers
        the whole handoff conservatively).  Waiters are dropped; their
        clients' pending requests fail over and retry at the new owner.
        Release listeners still fire so per-object bookkeeping (lease
        pin tables) cleans up locally.
        """
        exported: List[Tuple[int, str, LockMode]] = []
        for obj in objs:
            holders = self._holders.pop(obj, None)
            if holders:
                for client, mode in holders.items():
                    exported.append((obj, client, mode))
                    for fn in self.release_listeners:
                        fn(client, obj)
            self._waiters.pop(obj, None)
        return exported

    def import_holdings(self, entries: Iterable[Tuple[int, str, LockMode]],
                        ) -> None:
        """Install holdings exported by another manager (slot handoff).

        Each entry is recorded as an ordinary grant at the current time
        — the new owner's audit trail starts where the old owner's
        stopped."""
        for obj, client, mode in entries:
            if satisfies(self.mode_of(client, obj), mode):
                continue
            self._grant(client, obj, mode)

    def steal_one(self, client: str, obj: int) -> bool:
        """Stop honoring a single lock (V-lease per-object revocation)."""
        holders = self._holders.get(obj, {})
        mode = holders.pop(client, None)
        if mode is None:
            return False
        if not holders:
            self._holders.pop(obj, None)
        self.history.append(LockGrant(self._now(), "steal", obj, client, mode))
        self.steals += 1
        for fn in self.release_listeners:
            fn(client, obj)
        self._pump(obj)
        return True

    # -- internals -----------------------------------------------------------
    def _grant(self, client: str, obj: int, mode: LockMode) -> None:
        self._holders.setdefault(obj, {})[client] = mode
        self.history.append(LockGrant(self._now(), "grant", obj, client, mode))
        self.grants += 1
        for fn in self.grant_listeners:
            fn(client, obj, mode)

    def _pump(self, obj: int) -> None:
        """Grant queued waiters that are now compatible, FIFO."""
        q = self._waiters.get(obj)
        if not q:
            return
        progressed = True
        while progressed and q:
            progressed = False
            w = q[0]
            if not self.conflicts_for(w.client, obj, w.mode):
                q.pop(0)
                self._grant(w.client, obj, w.mode)
                w.callback(obj, w.mode)
                progressed = True
        if not q:
            self._waiters.pop(obj, None)
