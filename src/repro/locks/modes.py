"""Lock modes and their compatibility matrix."""

from __future__ import annotations

import enum


class LockMode(enum.IntEnum):
    """Data lock strength, ordered so stronger modes compare greater."""

    NONE = 0
    SHARED = 1      # permits cached reads
    EXCLUSIVE = 2   # permits cached reads and write-back writes

    @property
    def short(self) -> str:
        """One-letter name used in traces."""
        return {LockMode.NONE: "-", LockMode.SHARED: "S", LockMode.EXCLUSIVE: "X"}[self]


#: compatibility[(a, b)] — may one client hold ``a`` while another holds ``b``?
_COMPAT = {
    (LockMode.SHARED, LockMode.SHARED): True,
    (LockMode.SHARED, LockMode.EXCLUSIVE): False,
    (LockMode.EXCLUSIVE, LockMode.SHARED): False,
    (LockMode.EXCLUSIVE, LockMode.EXCLUSIVE): False,
}


def compatible(a: LockMode, b: LockMode) -> bool:
    """Whether two holders' modes may coexist on one object."""
    if a == LockMode.NONE or b == LockMode.NONE:
        return True
    return _COMPAT[(a, b)]


def satisfies(held: LockMode, wanted: LockMode) -> bool:
    """Whether an already-held mode covers a requested one."""
    return held >= wanted
