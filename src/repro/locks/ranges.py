"""Byte-range logical locks.

Storage Tank's locking is *logical* — it names distributed data
structures rather than disk addresses (paper §5).  The whole-file data
lock of :mod:`repro.locks.manager` is the coarsest logical lock; this
module provides the finer-grained variant the Storage Tank design
family used for large shared files: S/X locks over half-open byte
ranges ``[start, end)`` of one object, with the same demand/steal
discipline.

The manager keeps per-object interval lists.  A client's own grants
merge when adjacent/overlapping with an equal mode; partial releases
split grants.  Compatibility is the S/X matrix applied pairwise to
overlapping intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.locks.modes import LockMode, compatible, satisfies


@dataclass(frozen=True)
class ByteRange:
    """Half-open interval ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"invalid range [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        """Bytes covered."""
        return self.end - self.start

    def overlaps(self, other: "ByteRange") -> bool:
        """Whether the intervals share any byte."""
        return self.start < other.end and other.start < self.end

    def contains(self, other: "ByteRange") -> bool:
        """Whether ``other`` lies entirely inside this range."""
        return self.start <= other.start and other.end <= self.end

    def intersect(self, other: "ByteRange") -> Optional["ByteRange"]:
        """The shared interval, or None."""
        lo, hi = max(self.start, other.start), min(self.end, other.end)
        return ByteRange(lo, hi) if lo < hi else None

    def subtract(self, other: "ByteRange") -> List["ByteRange"]:
        """This range minus ``other`` (0, 1 or 2 pieces)."""
        if not self.overlaps(other):
            return [self]
        out = []
        if self.start < other.start:
            out.append(ByteRange(self.start, other.start))
        if other.end < self.end:
            out.append(ByteRange(other.end, self.end))
        return out


@dataclass(frozen=True)
class RangeGrant:
    """One held range lock."""

    client: str
    rng: ByteRange
    mode: LockMode


@dataclass
class _RangeWaiter:
    client: str
    rng: ByteRange
    mode: LockMode
    callback: Callable[[ByteRange, LockMode], None]


class RangeLockManager:
    """Server-side byte-range lock table for a set of objects."""

    def __init__(self, now_fn: Callable[[], float] = lambda: 0.0):
        self._now = now_fn
        self._grants: Dict[int, List[RangeGrant]] = {}
        self._waiters: Dict[int, List[_RangeWaiter]] = {}
        self.history: List[Tuple[float, str, int, str, ByteRange, LockMode]] = []
        self.grants_made = 0
        self.steals = 0

    # -- queries ------------------------------------------------------------
    def grants_on(self, obj: int) -> List[RangeGrant]:
        """Snapshot of live grants for an object."""
        return list(self._grants.get(obj, []))

    def holdings(self, client: str, obj: int) -> List[RangeGrant]:
        """The client's grants on one object."""
        return [g for g in self._grants.get(obj, []) if g.client == client]

    def mode_over(self, client: str, obj: int, rng: ByteRange) -> LockMode:
        """The weakest mode the client holds over *every* byte of ``rng``
        (NONE if any byte is uncovered)."""
        pieces = [rng]
        weakest = LockMode.EXCLUSIVE
        for g in self.holdings(client, obj):
            nxt = []
            for p in pieces:
                if g.rng.overlaps(p):
                    weakest = min(weakest, g.mode)
                    nxt.extend(p.subtract(g.rng))
                else:
                    nxt.append(p)
            pieces = nxt
        return weakest if not pieces else LockMode.NONE

    def conflicts_for(self, client: str, obj: int, rng: ByteRange,
                      mode: LockMode) -> List[RangeGrant]:
        """Other clients' grants that must yield for this request."""
        return [g for g in self._grants.get(obj, [])
                if g.client != client and g.rng.overlaps(rng)
                and not compatible(g.mode, mode)]

    def waiter_count(self, obj: int) -> int:
        """Queued range requests on an object."""
        return len(self._waiters.get(obj, []))

    def other_interest(self, client: str, obj: int) -> bool:
        """Whether any *other* client holds or awaits a range on ``obj``
        (the widen-to-extent grant policy widens only when this is
        False — widening under contention manufactures false sharing)."""
        if any(g.client != client for g in self._grants.get(obj, [])):
            return True
        return any(w.client != client for w in self._waiters.get(obj, []))

    # -- mutation -----------------------------------------------------------
    def try_acquire(self, client: str, obj: int, rng: ByteRange,
                    mode: LockMode) -> Tuple[bool, List[RangeGrant]]:
        """Grant if compatible with every overlapping grant and no queued
        waiter overlaps (FIFO fairness); else report conflicts."""
        if mode == LockMode.NONE:
            raise ValueError("cannot acquire LockMode.NONE")
        if satisfies(self.mode_over(client, obj, rng), mode):
            return (True, [])
        conflicts = self.conflicts_for(client, obj, rng, mode)
        queued = [w for w in self._waiters.get(obj, [])
                  if w.client != client and w.rng.overlaps(rng)]
        if not conflicts and not queued:
            self._grant(client, obj, rng, mode)
            return (True, [])
        return (False, conflicts)

    def enqueue_waiter(self, client: str, obj: int, rng: ByteRange,
                       mode: LockMode,
                       callback: Callable[[ByteRange, LockMode], None]) -> None:
        """Queue a blocked range request."""
        self._waiters.setdefault(obj, []).append(
            _RangeWaiter(client, rng, mode, callback))

    def release(self, client: str, obj: int,
                rng: Optional[ByteRange] = None) -> bool:
        """Release the client's grants overlapping ``rng`` (all if None).

        A partial overlap splits the grant: only the intersection is
        released.  Returns True if anything was released.
        """
        grants = self._grants.get(obj, [])
        kept: List[RangeGrant] = []
        released = False
        for g in grants:
            if g.client != client or (rng is not None and not g.rng.overlaps(rng)):
                kept.append(g)
                continue
            released = True
            self.history.append((self._now(), "release", obj, client,
                                 g.rng if rng is None else g.rng.intersect(rng),
                                 g.mode))
            if rng is not None:
                for piece in g.rng.subtract(rng):
                    kept.append(RangeGrant(client, piece, g.mode))
        if released:
            if kept:
                self._grants[obj] = kept
            else:
                self._grants.pop(obj, None)
            self._pump(obj)
        return released

    def downgrade(self, client: str, obj: int, rng: ByteRange,
                  to: LockMode) -> bool:
        """Weaken the client's grants over ``rng`` to ``to`` (X→S)."""
        if to == LockMode.NONE:
            return self.release(client, obj, rng)
        grants = self._grants.get(obj, [])
        changed = False
        out: List[RangeGrant] = []
        for g in grants:
            if g.client != client or not g.rng.overlaps(rng) or g.mode <= to:
                out.append(g)
                continue
            changed = True
            inter = g.rng.intersect(rng)
            assert inter is not None
            for piece in g.rng.subtract(rng):
                out.append(RangeGrant(client, piece, g.mode))
            out.append(RangeGrant(client, inter, to))
            self.history.append((self._now(), "downgrade", obj, client,
                                 inter, to))
        if changed:
            self._grants[obj] = out
            self._pump(obj)
        return changed

    def steal_all(self, client: str) -> List[Tuple[int, RangeGrant]]:
        """Stop honoring every range the client holds (lease expiry)."""
        stolen = []
        for obj in list(self._grants):
            for g in self.holdings(client, obj):
                stolen.append((obj, g))
                self.history.append((self._now(), "steal", obj, client,
                                     g.rng, g.mode))
                self.steals += 1
            self._grants[obj] = [g for g in self._grants[obj]
                                 if g.client != client]
            if not self._grants[obj]:
                self._grants.pop(obj, None)
        for obj, q in list(self._waiters.items()):
            self._waiters[obj] = [w for w in q if w.client != client]
        for obj in {o for o, _ in stolen}:
            self._pump(obj)
        return stolen

    # -- internals ------------------------------------------------------------
    def _grant(self, client: str, obj: int, rng: ByteRange,
               mode: LockMode) -> None:
        grants = self._grants.setdefault(obj, [])
        # The new grant covers rng at `mode`, except where the client
        # already holds something *stronger* (an X island inside an S
        # request keeps its strength).  Weaker/equal own coverage inside
        # rng is superseded; its parts outside rng survive.
        new_pieces: List[ByteRange] = [rng]
        kept: List[RangeGrant] = []
        for g in grants:
            if g.client != client or not g.rng.overlaps(rng):
                kept.append(g)
                continue
            if g.mode > mode:
                kept.append(g)
                new_pieces = [piece for r in new_pieces
                              for piece in r.subtract(g.rng)]
            else:
                for piece in g.rng.subtract(rng):
                    kept.append(RangeGrant(client, piece, g.mode))
        for piece in new_pieces:
            kept.append(RangeGrant(client, piece, mode))
        self._grants[obj] = self._normalized(client, kept)
        self.grants_made += 1
        self.history.append((self._now(), "grant", obj, client, rng, mode))

    @staticmethod
    def _normalized(client: str, grants: List[RangeGrant]) -> List[RangeGrant]:
        """Coalesce the client's adjacent same-mode grants."""
        own = sorted((g for g in grants if g.client == client),
                     key=lambda g: (g.rng.start, g.rng.end))
        others = [g for g in grants if g.client != client]
        merged: List[RangeGrant] = []
        for g in own:
            if (merged and merged[-1].mode == g.mode
                    and merged[-1].rng.end >= g.rng.start):
                prev = merged.pop()
                merged.append(RangeGrant(client,
                                         ByteRange(prev.rng.start,
                                                   max(prev.rng.end, g.rng.end)),
                                         g.mode))
            else:
                merged.append(g)
        return others + merged

    def _pump(self, obj: int) -> None:
        q = self._waiters.get(obj)
        if not q:
            return
        progressed = True
        while progressed and q:
            progressed = False
            w = q[0]
            if not self.conflicts_for(w.client, obj, w.rng, w.mode):
                q.pop(0)
                self._grant(w.client, obj, w.rng, w.mode)
                w.callback(w.rng, w.mode)
                progressed = True
        if not q:
            self._waiters.pop(obj, None)
