"""Logical data locks (paper §1.2, §5).

Storage Tank locking is *logical* — locks name distributed data
structures (files), not disk address ranges like the GFS ``dlock``.
Clients cache locks across operations; the server demands them back when
another client conflicts, and *steals* them (stops honoring them without
the holder's consent) only under the lease protocol's safety rules.

:mod:`repro.locks.modes` defines modes and compatibility,
:mod:`repro.locks.manager` the server-side lock table with waiter
queues, demand callbacks and the steal operation,
:mod:`repro.locks.client_table` the client-side cached-lock view.
"""

from repro.locks.client_table import ClientLockTable
from repro.locks.manager import LockGrant, LockManager
from repro.locks.modes import LockMode, compatible, satisfies
from repro.locks.ranges import ByteRange, RangeGrant, RangeLockManager

__all__ = [
    "ByteRange",
    "ClientLockTable",
    "LockGrant",
    "LockManager",
    "LockMode",
    "RangeGrant",
    "RangeLockManager",
    "compatible",
    "satisfies",
]
