"""Client-side view of cached locks.

Clients cache locks across operations (the paper's clients "still cache
data and hold locks" while idle, §3.1) and must drop them all when the
lease that protects them expires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.locks.modes import LockMode, satisfies


@dataclass
class ClientLockTable:
    """Locks this client believes it holds, per server."""

    _held: Dict[int, LockMode] = field(default_factory=dict)

    def note_granted(self, obj: int, mode: LockMode) -> None:
        """Record a server grant (strongest mode wins)."""
        cur = self._held.get(obj, LockMode.NONE)
        if mode > cur:
            self._held[obj] = mode

    def note_released(self, obj: int) -> None:
        """Forget a lock after voluntary release or revocation."""
        self._held.pop(obj, None)

    def note_downgraded(self, obj: int, to: LockMode) -> None:
        """Record a downgrade."""
        if obj in self._held and to < self._held[obj]:
            if to == LockMode.NONE:
                self._held.pop(obj)
            else:
                self._held[obj] = to

    def covers(self, obj: int, mode: LockMode) -> bool:
        """Whether a held mode satisfies the wanted one."""
        return satisfies(self._held.get(obj, LockMode.NONE), mode)

    def mode_of(self, obj: int) -> LockMode:
        """Held mode for an object (NONE if not held)."""
        return self._held.get(obj, LockMode.NONE)

    def all_held(self) -> List[Tuple[int, LockMode]]:
        """Snapshot of everything held."""
        return list(self._held.items())

    def drop_all(self) -> List[Tuple[int, LockMode]]:
        """Forget every lock (lease expiry); returns what was dropped."""
        dropped = list(self._held.items())
        self._held.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._held)
