"""The Storage Tank client.

A client node mounts the file system by talking to a server over the
control network for metadata and locks, and performs all data I/O
directly to shared SAN devices (paper §1.1).  It write-back caches data
pages (:mod:`repro.client.cache`), caches locks across operations, and
operates strictly under the lease state machine: new requests are
admitted only in lease phases 1-2, phase 3 quiesces, phase 4 flushes,
and expiry invalidates the cache and cedes all locks (§3.2).

Local applications use the POSIX-flavoured generator API on
:class:`~repro.client.node.StorageTankClient` (``open_file`` / ``read``
/ ``write`` / ``close`` / ``flush``).
"""

from repro.client.cache import CacheStats, Page, PageCache
from repro.client.openfile import FdTable, OpenFile
from repro.client.pool import ClientPool, PooledCounters
from repro.client.node import (
    ClientConfig,
    ClientDisconnectedError,
    ClientIOError,
    ClientQuiescedError,
    StorageTankClient,
)

__all__ = [
    "CacheStats",
    "ClientConfig",
    "ClientDisconnectedError",
    "ClientIOError",
    "ClientPool",
    "ClientQuiescedError",
    "FdTable",
    "OpenFile",
    "Page",
    "PageCache",
    "PooledCounters",
    "StorageTankClient",
]
