"""Write-back page cache.

Clients write into their local cache and harden the data to shared
storage later (paper §2.1) — which is precisely why fencing alone
strands dirty data.  Pages carry the application write *tag* so the
offline audit can follow a logical write from ``app.write.ack`` through
the cache to the disk history (or to an ``app.error`` report).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

PageKey = Tuple[int, int]  # (file_id, logical_block)


@dataclass
class Page:
    """One cached block."""

    file_id: int
    logical_block: int
    device: str
    lba: int
    tag: Optional[str]      # last content tag (None = pristine block)
    version: int            # disk version this content corresponds to
    dirty: bool = False

    @property
    def key(self) -> PageKey:
        """Cache key."""
        return (self.file_id, self.logical_block)


@dataclass
class CacheStats:
    """Hit/miss and write-back counters."""

    hits: int = 0
    misses: int = 0
    dirty_writes: int = 0
    flushes: int = 0
    invalidated_clean: int = 0
    discarded_dirty: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PageCache:
    """Per-client block cache with clean-page LRU eviction.

    Dirty pages are never evicted silently: when the cache is full of
    dirty pages the caller must flush first (``needs_flush`` turns True).
    """

    def __init__(self, capacity_pages: int = 65536):
        if capacity_pages <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity_pages
        self._pages: Dict[PageKey, Page] = {}
        self._lru: List[PageKey] = []  # least-recent first, clean+dirty
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def dirty_count(self) -> int:
        """Number of dirty pages."""
        return sum(1 for p in self._pages.values() if p.dirty)

    @property
    def needs_flush(self) -> bool:
        """True when eviction is impossible without a flush."""
        return len(self._pages) >= self.capacity and self.dirty_count >= self.capacity

    # -- lookup --------------------------------------------------------------
    def get(self, file_id: int, logical_block: int) -> Optional[Page]:
        """Cached page or None (counts hit/miss)."""
        key = (file_id, logical_block)
        page = self._pages.get(key)
        if page is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._touch(key)
        return page

    def peek(self, file_id: int, logical_block: int) -> Optional[Page]:
        """Lookup without statistics or LRU effects."""
        return self._pages.get((file_id, logical_block))

    # -- population -------------------------------------------------------------
    def put_clean(self, page: Page) -> None:
        """Install a page read from disk."""
        page.dirty = False
        self._install(page)

    def write_dirty(self, file_id: int, logical_block: int, device: str,
                    lba: int, tag: str) -> Page:
        """Apply an application write to the cache (write-back)."""
        key = (file_id, logical_block)
        page = self._pages.get(key)
        if page is None:
            page = Page(file_id=file_id, logical_block=logical_block,
                        device=device, lba=lba, tag=tag, version=-1, dirty=True)
            self._install(page)
        else:
            page.tag = tag
            page.dirty = True
            self._touch(key)
        self.stats.dirty_writes += 1
        return page

    # -- write-back -----------------------------------------------------------
    def dirty_pages(self, file_id: Optional[int] = None) -> List[Page]:
        """Snapshot of dirty pages (optionally one file's)."""
        return [p for p in self._pages.values()
                if p.dirty and (file_id is None or p.file_id == file_id)]

    def mark_flushed(self, page: Page, new_version: int) -> None:
        """The page's content reached disk at ``new_version``.

        If the application dirtied the page again while the flush was in
        flight the page stays dirty (the cache compares nothing — the
        caller passes the tag it flushed via ``page``; we only clear when
        the current tag is the flushed one).
        """
        current = self._pages.get(page.key)
        if current is None:
            return
        if current.tag == page.tag:
            current.dirty = False
            current.version = new_version
        self.stats.flushes += 1

    # -- invalidation ------------------------------------------------------------
    def invalidate_file(self, file_id: int) -> List[Page]:
        """Drop every page of a file; returns dropped *dirty* pages."""
        dropped = []
        for key in [k for k in self._pages if k[0] == file_id]:
            page = self._pages.pop(key)
            self._lru.remove(key)
            if page.dirty:
                self.stats.discarded_dirty += 1
                dropped.append(page)
            else:
                self.stats.invalidated_clean += 1
        return dropped

    def invalidate_all(self) -> List[Page]:
        """Drop the whole cache (lease expiry); returns dropped dirty pages."""
        dropped = [p for p in self._pages.values() if p.dirty]
        self.stats.discarded_dirty += len(dropped)
        self.stats.invalidated_clean += len(self._pages) - len(dropped)
        self._pages.clear()
        self._lru.clear()
        return dropped

    # -- internals --------------------------------------------------------------
    def _touch(self, key: PageKey) -> None:
        self._lru.remove(key)
        self._lru.append(key)

    def _install(self, page: Page) -> None:
        key = page.key
        if key in self._pages:
            self._pages[key] = page
            self._touch(key)
            return
        self._evict_if_needed()
        self._pages[key] = page
        self._lru.append(key)

    def _evict_if_needed(self) -> None:
        if len(self._pages) < self.capacity:
            return
        for key in self._lru:
            if not self._pages[key].dirty:
                self._lru.remove(key)
                self._pages.pop(key)
                self.stats.invalidated_clean += 1
                return
        # All dirty: caller should have flushed; refuse to grow unboundedly
        # by silently accepting — grow anyway but flag it via needs_flush.
