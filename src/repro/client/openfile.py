"""Open-file instances and the per-client descriptor table."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.locks.modes import LockMode
from repro.metadata.inode import FileAttributes
from repro.storage.blockmap import ExtentMap


@dataclass
class OpenFile:
    """A client's open instance of one file (paper: "open instance with a
    data lock")."""

    fd: int
    path: str
    file_id: int
    mode: str                    # "r" | "w"
    attrs: FileAttributes
    extents: ExtentMap
    lock: LockMode = LockMode.NONE
    stale: bool = False          # lease expired since open; must revalidate
    server: str = "server"       # the metadata server that owns this file

    @property
    def wanted_lock(self) -> LockMode:
        """Lock mode this open mode requires."""
        return LockMode.EXCLUSIVE if self.mode == "w" else LockMode.SHARED

    def resolve(self, logical_block: int) -> Tuple[str, int]:
        """Physical location of a logical block."""
        return self.extents.resolve(logical_block)


class FdTable:
    """File-descriptor table for one client."""

    def __init__(self) -> None:
        self._fds: Dict[int, OpenFile] = {}
        self._next = itertools.count(3)  # 0-2 reserved, unix-flavoured

    def install(self, path: str, file_id: int, mode: str,
                attrs: FileAttributes, extents: ExtentMap,
                lock: LockMode, server: str = "server") -> OpenFile:
        """Create an open instance and hand out its descriptor."""
        fd = next(self._next)
        of = OpenFile(fd=fd, path=path, file_id=file_id, mode=mode,
                      attrs=attrs, extents=extents, lock=lock, server=server)
        self._fds[fd] = of
        return of

    def get(self, fd: int) -> OpenFile:
        """Resolve a descriptor or raise KeyError."""
        return self._fds[fd]

    def close(self, fd: int) -> OpenFile:
        """Remove a descriptor."""
        return self._fds.pop(fd)

    def by_file_id(self, file_id: int) -> List[OpenFile]:
        """All open instances of a file."""
        return [of for of in self._fds.values() if of.file_id == file_id]

    def all_open(self) -> List[OpenFile]:
        """Every open instance."""
        return list(self._fds.values())

    def mark_all_stale(self) -> None:
        """Lease expired: every open instance must revalidate its lock."""
        for of in self._fds.values():
            of.stale = True
            of.lock = LockMode.NONE

    def mark_stale_for(self, file_ids) -> None:
        """Per-server lease expiry: only that server's files go stale."""
        ids = set(file_ids)
        for of in self._fds.values():
            if of.file_id in ids:
                of.stale = True
                of.lock = LockMode.NONE

    def __len__(self) -> int:
        return len(self._fds)
