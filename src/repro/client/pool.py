"""Flyweight client records and the :class:`ClientPool` accessor.

The pool is the single public face for "the clients of a system" — the
typed accessor that replaces :class:`~repro.core.system.StorageTankSystem`'s
historical ``clients``/``agents`` dict pair — *and* the flyweight store
that makes million-client populations affordable.

Two modes share one API:

- **eager** (default; every pre-existing configuration): the pool wraps
  the fully-built client objects, ``get`` is a dict lookup, and nothing
  about construction order, RNG draws or event scheduling changes —
  pinned trace hashes stay bit-identical.
- **lazy** (``ScaleConfig.lazy_clients``): clients are *registered*, not
  built.  A registered-but-parked client is a row of struct-of-arrays
  state — a few counters in flat :mod:`array` columns plus a lease-lapse
  record in the :class:`~repro.lease.pooled.PooledLeaseService` — and
  costs **zero** heap-allocated sim objects and **zero** kernel heap
  entries.  Names are derived from ``prefix + index`` on demand, so a
  million parked clients do not even pay for a million name strings.

``get(name)`` on a parked client *materializes* it: one shared factory
closure (no per-client closures at registration time) builds the full
:class:`~repro.client.node.StorageTankClient` facade, which then behaves
exactly like an eagerly-built client.  ``park(name)`` is the reverse
edge: a *clean* client (no dirty pages, no held locks, no open files,
nothing in flight) folds its counters back into the arrays, hands its
live lease to the pooled expiry service, and tears down its endpoint
and daemons.  Parking a dirty client is refused — the paper's §3.2
obligation to flush before expiry is never left to a flyweight.

Inbound traffic wakes a parked client through the control network's
lazy-resolver hook (one resolver for the whole population), so a NACK
or server demand addressed to a parked name materializes it instead of
vanishing.
"""

from __future__ import annotations

from array import array
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.protocols.base import ClientAgent

__all__ = ["ClientPool", "PooledCounters"]

#: Counter columns folded into the struct-of-arrays store while a
#: client is parked (names match ``StorageTankClient`` attributes).
COUNTER_COLUMNS: Tuple[str, ...] = (
    "ops_completed", "ops_rejected", "app_errors", "keepalives_sent")


class PooledCounters:
    """Struct-of-arrays counter columns for flyweight client slots.

    One signed 64-bit :mod:`array` column per counter in
    :data:`COUNTER_COLUMNS` plus a wakeup counter — a parked client's
    entire mutable state apart from its pooled lease record.
    """

    def __init__(self) -> None:
        self.columns: Dict[str, "array[int]"] = {
            name: array("q") for name in COUNTER_COLUMNS}
        self.wakeups: "array[int]" = array("q")

    def ensure_capacity(self, n: int) -> None:
        """Grow every column to hold at least ``n`` slots."""
        grow = n - len(self.wakeups)
        if grow > 0:
            zeros = [0] * grow
            for col in self.columns.values():
                col.extend(zeros)
            self.wakeups.extend(zeros)

    def fold(self, idx: int, client: ClientAgent) -> None:
        """Accumulate a client's live counters into slot ``idx``."""
        for name, col in self.columns.items():
            col[idx] += int(getattr(client, name, 0))

    def seed(self, idx: int, client: ClientAgent) -> None:
        """Load slot ``idx``'s folded counters onto a fresh facade."""
        for name, col in self.columns.items():
            current = int(getattr(client, name, 0))
            setattr(client, name, current + col[idx])
            col[idx] = 0

    def snapshot(self, idx: int) -> Dict[str, int]:
        """Folded counter values for slot ``idx`` (parked clients)."""
        return {name: col[idx] for name, col in self.columns.items()}


class ClientPool:
    """Typed accessor over a system's client population.

    Use :meth:`eager` to wrap fully-built clients (the default build
    path) or :meth:`lazy` to register a flyweight population that
    materializes on first touch.  In both modes:

    - ``pool.get(name)`` returns the client (materializing if parked);
    - ``pool.iter_active()`` yields only live (materialized) clients;
    - ``len(pool)`` is the registered population, live or parked.
    """

    def __init__(self) -> None:
        self._live: Dict[str, ClientAgent] = {}
        self._agents: Dict[str, ClientAgent] = {}
        self._population = 0
        self._lazy = False
        self._prefix = "c"
        self._start = 1
        self._factory: Optional[Callable[[str, int], ClientAgent]] = None
        self._parker: Optional[Callable[[ClientAgent, int], None]] = None
        #: invoked with (name, idx) just before the factory runs
        self.on_materialize: Optional[Callable[[str, int], None]] = None
        self.counters = PooledCounters()
        self.materializations = 0
        self.parks = 0
        #: wake reason -> count ("api", "datagram", "lease-expiry", ...)
        self.wake_reasons: Dict[str, int] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def eager(cls, clients: Dict[str, ClientAgent],
              agents: Optional[Dict[str, ClientAgent]] = None) -> "ClientPool":
        """Wrap fully-built clients (the historical build path)."""
        pool = cls()
        pool._live = clients
        pool._agents = agents if agents is not None else {}
        pool._population = len(clients)
        return pool

    @classmethod
    def lazy(cls, population: int, factory: Callable[[str, int], ClientAgent],
             prefix: str = "c", start: int = 1) -> "ClientPool":
        """Register ``population`` flyweight clients behind one factory.

        ``factory(name, idx)`` builds the full facade on first touch.
        Registration allocates only the struct-of-arrays columns — no
        client objects, no name strings, no kernel events.
        """
        if population < 0:
            raise ValueError(f"population must be >= 0, got {population}")
        pool = cls()
        pool._lazy = True
        pool._population = population
        pool._factory = factory
        pool._prefix = prefix
        pool._start = start
        pool.counters.ensure_capacity(population)
        return pool

    def set_parker(self, parker: Callable[[ClientAgent, int], None]) -> None:
        """Install the system-level park hook (endpoint/daemon teardown)."""
        self._parker = parker

    # -- naming ------------------------------------------------------------
    def name_of(self, idx: int) -> str:
        """Name of slot ``idx`` (lazy mode derives it; eager mode indexes
        the insertion order)."""
        if self._lazy:
            if not 0 <= idx < self._population:
                raise IndexError(f"client index {idx} out of range")
            return f"{self._prefix}{self._start + idx}"
        return list(self._live)[idx]

    def index_of(self, name: str) -> Optional[int]:
        """Slot index of a registered name, or None (lazy mode only
        resolves names of the ``prefix + integer`` shape)."""
        if not self._lazy:
            for i, n in enumerate(self._live):
                if n == name:
                    return i
            return None
        if not name.startswith(self._prefix):
            return None
        try:
            idx = int(name[len(self._prefix):]) - self._start
        except ValueError:
            return None
        return idx if 0 <= idx < self._population else None

    # -- core accessor API -------------------------------------------------
    def get(self, name: str, reason: str = "api") -> ClientAgent:
        """Look up a client, materializing a parked flyweight.

        Raises KeyError for names outside the registered population.
        """
        client = self._live.get(name)
        if client is not None:
            return client
        if not self._lazy:
            raise KeyError(name)
        idx = self.index_of(name)
        if idx is None:
            raise KeyError(name)
        return self._materialize(name, idx, reason)

    def peek(self, name: str) -> Optional[ClientAgent]:
        """The live client for ``name``, or None — never materializes."""
        return self._live.get(name)

    def iter_active(self) -> Iterator[ClientAgent]:
        """Iterate live (materialized) clients in activation order."""
        return iter(self._live.values())

    def live_names(self) -> List[str]:
        """Names of live clients in activation order."""
        return list(self._live)

    def live_items(self) -> List[Tuple[str, ClientAgent]]:
        """(name, client) pairs for live clients in activation order."""
        return list(self._live.items())

    def names(self) -> Iterator[str]:
        """Iterate every registered name, live or parked."""
        if self._lazy:
            prefix, start = self._prefix, self._start
            return (f"{prefix}{start + i}" for i in range(self._population))
        return iter(self._live)

    def __len__(self) -> int:
        """Registered population (live + parked)."""
        return self._population

    def __contains__(self, name: str) -> bool:
        """Whether ``name`` is a registered client (live or parked)."""
        if name in self._live:
            return True
        return self._lazy and self.index_of(name) is not None

    @property
    def live_count(self) -> int:
        """Number of currently materialized clients."""
        return len(self._live)

    @property
    def parked_count(self) -> int:
        """Number of registered-but-parked flyweight clients."""
        return self._population - len(self._live)

    # -- agents ------------------------------------------------------------
    def set_agent(self, name: str, agent: ClientAgent) -> None:
        """Attach a protocol agent (heartbeater, renewer) for a client."""
        self._agents[name] = agent

    def agent_for(self, name: str) -> Optional[ClientAgent]:
        """The protocol agent for a client, or None."""
        return self._agents.get(name)

    def iter_agents(self) -> Iterator[ClientAgent]:
        """Iterate protocol agents in attachment order."""
        return iter(self._agents.values())

    def agent_items(self) -> List[Tuple[str, ClientAgent]]:
        """(name, agent) pairs in attachment order."""
        return list(self._agents.items())

    # -- flyweight lifecycle -----------------------------------------------
    def _materialize(self, name: str, idx: int, reason: str) -> ClientAgent:
        factory = self._factory
        if factory is None:
            raise KeyError(name)
        if self.on_materialize is not None:
            self.on_materialize(name, idx)
        client = factory(name, idx)
        self.counters.seed(idx, client)
        self.counters.wakeups[idx] += 1
        self._live[name] = client
        self.materializations += 1
        self.wake_reasons[reason] = self.wake_reasons.get(reason, 0) + 1
        return client

    def park(self, name: str) -> None:
        """Fold a clean live client back into its flyweight record.

        The system-installed parker verifies cleanliness, records the
        live lease into the pooled expiry service and tears down the
        endpoint and daemon processes; this method then folds counters
        and drops the object.  Raises in eager mode (nothing to fold
        into) and for names that are not live.
        """
        if not self._lazy:
            raise RuntimeError("park() requires a lazy ClientPool "
                               "(ScaleConfig.lazy_clients)")
        client = self._live.get(name)
        if client is None:
            raise KeyError(f"{name!r} is not a live client")
        idx = self.index_of(name)
        assert idx is not None
        if self._parker is not None:
            self._parker(client, idx)
        self.counters.fold(idx, client)
        del self._live[name]
        self.parks += 1
