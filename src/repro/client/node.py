"""The Storage Tank client node.

Combines the page cache, cached locks, open-file table and the
four-phase lease state machine into the POSIX-flavoured API local
applications call.  All methods that touch the network or the SAN are
process generators (``yield from client.read(...)``).

Failure semantics the audit relies on:

- every application write that is acknowledged gets a unique *tag* and
  an ``app.write.ack`` trace record;
- a tag either reaches shared storage (``san.write`` + disk history) or
  the client emits ``app.error`` for it — silent loss is a protocol
  violation (invariant I2), not an accepted outcome;
- every application read emits ``app.read`` with the tags it returned,
  so stale reads are detectable offline (invariant I3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.client.cache import Page, PageCache
from repro.client.openfile import FdTable, OpenFile
from repro.lease.client_lease import ClientLeaseManager, LeaseCallbacks
from repro.lease.contract import LeaseContract
from repro.lease.phases import LeasePhase
from repro.locks.client_table import ClientLockTable
from repro.locks.modes import LockMode
from repro.metadata.inode import FileAttributes
from repro.net.control import ControlNetwork, Endpoint, RetryPolicy
from repro.net.message import DeliveryError, Message, MsgKind, Nack, NackError
from repro.net.san import SanFabric, SanUnreachableError
from repro.obs import Observability
from repro.sim.clock import LocalClock
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder
from repro.storage.blockmap import (
    BLOCK_SIZE,
    byte_range_to_blocks,
    extents_from_payload,
)
from repro.storage.disk import FencedIoError


class ClientQuiescedError(Exception):
    """The lease is suspect/expired; new requests are not admitted (§3.2)."""


class ClientDisconnectedError(Exception):
    """No valid lease with the server; operation refused."""


class ClientIOError(Exception):
    """A data I/O failed at the SAN (fence or SAN partition) — the EIO
    the application sees.  Reported, never silent."""


def _routing_refusal(exc: NackError) -> bool:
    """Whether a NACK is a cluster routing refusal (retry elsewhere).

    Matches by substring because a refusal raised inside a deferred
    transaction surfaces as ``repr(exc)`` in the error field."""
    err = str(exc.nack.payload.get("error", ""))
    return "wrong_owner" in err or "map_stale" in err


@dataclass
class ClientConfig:
    """Tunables for one client node."""

    writeback_interval: float = 5.0     # local seconds between write-back scans
    cache_capacity_pages: int = 65536
    rpc_timeout: float = 1.0            # local seconds per datagram attempt
    rpc_retries: int = 3
    quiesce_behavior: str = "error"     # "error" | "wait" for ops during phases 3+
    use_leases: bool = True             # False for baseline clients
    data_path: str = "direct"           # "direct" (SAN) | "server" (function ship)
    # Metadata is only weakly consistent (paper §3, footnote 1): with a
    # positive TTL, getattr serves a cached copy for up to that many
    # local seconds before re-fetching.  0 disables attribute caching.
    attr_cache_ttl: float = 0.0
    # Intent locking (Lustre DLM style): open/growth-setattr ride a
    # LOCK_INTENT carrying the operation, byte-range batches ride
    # LOCK_BATCH, and closes defer onto the next batch.  Off by default:
    # the split protocol's datagram sequence — and the golden trace
    # hashes over it — is untouched.
    use_intents: bool = False


class StorageTankClient:
    """One client computer."""

    def __init__(self, sim: Simulator, net: ControlNetwork, san: SanFabric,
                 name: str, server, clock: LocalClock,
                 contract: LeaseContract,
                 config: Optional[ClientConfig] = None,
                 trace: Optional[TraceRecorder] = None,
                 obs: Optional[Observability] = None):
        """``server`` may be one name or a sequence of names: a client
        must hold a valid lease with *every* server it holds locks from
        (paper §3), so each server gets its own lease state machine."""
        self.sim = sim
        self.obs = obs if obs is not None else Observability()
        self.san = san
        self.name = name
        if isinstance(server, str):
            self.servers: Tuple[str, ...] = (server,)
        else:
            self.servers = tuple(server)
        if not self.servers:
            raise ValueError("need at least one server")
        self.server = self.servers[0]  # primary (routing fallback)
        self.config = config or ClientConfig()
        self.trace = trace if trace is not None else net.trace
        self.contract = contract

        policy = RetryPolicy(timeout=self.config.rpc_timeout,
                             retries=self.config.rpc_retries)
        self.endpoint = Endpoint(sim, net, name, clock, trace=self.trace,
                                 default_policy=policy)
        self.endpoint.obs = self.obs
        san.attach_initiator(name)

        self.cache = PageCache(self.config.cache_capacity_pages)
        self.locks = ClientLockTable()
        self.fds = FdTable()
        self._write_seq = itertools.count(1)
        self._in_flight = 0
        self._drained: Event = sim.event()
        self._drained.succeed()
        self._quiesced = False
        self._resume_ev: Event = sim.event()
        # Lock pinning: a demand compliance must not release a lock out
        # from under an operation that already validated it (TOCTOU).
        self._file_inflight: Dict[int, int] = {}
        self._file_drain_evs: Dict[int, Event] = {}
        self._revoking: set = set()
        # A reply that carries a lock mode (OPEN, LOCK_ACQUIRE) reflects
        # server state at *execution* time, not delivery time.  Under
        # message loss the at-most-once layer re-delivers cached replies
        # arbitrarily late, so a grant executed before a demand-driven
        # release can arrive after it — and must not resurrect the lock.
        # sim-time of the last revocation, per file.
        self._lock_revoked_at: Dict[int, float] = {}

        # Application-visible counters.
        self.ops_completed = 0
        self.ops_rejected = 0
        self.app_errors = 0
        self.keepalives_sent = 0
        self.reasserts_sent = 0
        # Range-lock demands received, per file (contention census).
        self.range_demands_seen: Dict[int, int] = {}
        self._m_lease_msgs = self.obs.registry.counter(
            "lease.client.msgs_sent", "Client-originated lease messages",
            labels=("node",)).labels(node=name)

        # §6 server recovery: every server ACK carries an epoch; a change
        # means that server restarted and lost its lock table — reassert.
        self._server_epoch: Dict[str, int] = {}
        self.endpoint.ack_listeners.append(self._on_epoch)
        # Deferred transactions ACK their receipt *before* execution, so
        # the epoch rides the final result instead — a client busy with
        # opens/creates would otherwise never observe a restart.
        self.endpoint.result_listeners.append(self._on_epoch)

        # file_id -> owning server (populated at create/open).
        self._file_server: Dict[int, str] = {}
        # Cluster rerouting state (wired by ``attach_cluster``): the
        # coordinator's node name, the last shard map we saw, and
        # file_id -> ring slot so fid-routed requests follow slot moves.
        self.coordinator: Optional[str] = None
        self.shard_map = None
        self._file_slot: Dict[int, int] = {}
        self.rerouted_ops = 0
        self.shard_migrations = 0
        # Weakly consistent attribute cache: path -> (attrs, local fetch time).
        self._attr_cache: Dict[str, Tuple[FileAttributes, float]] = {}
        self.attr_cache_hits = 0
        # Deferred closes (intent mode): per-server file ids whose close
        # census rides the next LOCK_BATCH instead of its own datagram.
        self._pending_closes: Dict[str, List[int]] = {}

        self.leases: Dict[str, ClientLeaseManager] = {}
        if self.config.use_leases:
            for srv in self.servers:
                self.leases[srv] = ClientLeaseManager(
                    sim, self.endpoint, srv, contract,
                    callbacks=LeaseCallbacks(
                        send_keepalive=self._keepalive_sender(srv),
                        on_enter_suspect=self._quiesce,
                        on_enter_flush=self._flush_all_spawner(srv),
                        on_expired=self._expiry_handler(srv),
                        on_resume_service=self._unquiesce,
                        on_reconnected=self._unquiesce,
                    ),
                    trace=self.trace, obs=self.obs)
            self.endpoint.ack_listeners.append(self._on_ack_renew)
            self.endpoint.nack_listeners.append(self._on_nack)

        # Server-initiated requests.
        # repro-lint: handles[client-demands]
        self.endpoint.register(MsgKind.LOCK_DEMAND, self._on_lock_demand)
        self.endpoint.register(MsgKind.RANGE_DEMAND, self._on_range_demand)
        self.endpoint.register(MsgKind.CACHE_INVALIDATE, self._on_cache_invalidate)

        # Optional external admission gate (baseline agents install one:
        # e.g. Frangipani checks its heartbeat lease before every op).
        self.admission_check = None

        # A non-positive interval disables the standing write-back timer
        # entirely (scale path: materialized facades flush explicitly, so
        # a short-lived wake does not leave a daemon ticking behind it).
        self._writeback_proc = (
            sim.process(self._writeback_daemon(), name=f"{name}:writeback")
            if self.config.writeback_interval > 0 else None)

    # ------------------------------------------------------------------
    # cluster attachment
    # ------------------------------------------------------------------
    def attach_cluster(self, coordinator: str, shard_map: Any) -> None:
        """Enable shard-map routing (called by ``build_system``)."""
        self.coordinator = coordinator
        self.shard_map = shard_map
        self.endpoint.register(MsgKind.CLUSTER_MAP_UPDATE, self._on_map_push)

    # ------------------------------------------------------------------
    # application API (process generators)
    # ------------------------------------------------------------------
    def create(self, path: str, size: int = 0) -> Generator[Event, Any, int]:
        """Create a file on its owning server; returns its file id."""
        srv = self.server_for_path(path)
        yield from self._admit(srv)
        self._enter()
        try:
            reply = yield from self._rpc(MsgKind.CREATE,
                                         {"path": path, "size": size}, srv,
                                         route=("path", path))
            fid = int(reply.payload["file_id"])
            self._note_file_owner(fid, path)
            return fid
        finally:
            self._exit()

    def open_file(self, path: str, mode: str = "r") -> Generator[Event, Any, int]:
        """Open a file, acquiring its data lock; returns a descriptor."""
        if mode not in ("r", "w"):
            raise ValueError(f"mode must be 'r' or 'w', got {mode!r}")
        srv = self.server_for_path(path)
        yield from self._admit(srv)
        self._enter()
        try:
            sent_at = self.sim.now
            if self.config.use_intents:
                p = yield from self._intent_open(path, mode, srv)
            else:
                reply = yield from self._rpc(MsgKind.OPEN,
                                             {"path": path, "mode": mode}, srv,
                                             route=("path", path))
                p = reply.payload
            attrs = FileAttributes.from_payload(p["attrs"])
            extents = extents_from_payload(p["extents"])
            lock = LockMode(int(p["lock"]))
            fid = int(p["file_id"])
            self._note_file_owner(fid, path)
            stale_grant = self._lock_reply_stale(fid, sent_at)
            if not stale_grant:
                self.locks.note_granted(fid, lock)
            of = self.fds.install(path, fid, mode, attrs, extents,
                                  LockMode.NONE if stale_grant else lock,
                                  server=self._file_server[fid])
            if stale_grant:
                # The lock was revoked while the open was in flight; the
                # first operation revalidates via a fresh acquire.
                of.stale = True
            self.ops_completed += 1
            return of.fd
        finally:
            self._exit()

    def _intent_open(self, path: str, mode: str, srv: str,
                     ) -> Generator[Event, Any, Dict[str, Any]]:
        """One-round-trip open: the lock request carries the operation.

        Deferred closes for this server ride the same datagram as a
        LOCK_BATCH, so an open→close→open cycle costs one message."""
        closes = self._pending_closes.pop(srv, None)
        if not closes:
            reply = yield from self._rpc(MsgKind.LOCK_INTENT,
                                         {"op": "open", "path": path,
                                          "mode": mode}, srv,
                                         route=("path", path))
            return reply.payload
        ops: List[Dict[str, Any]] = [{"op": "close", "file_id": fid}
                                     for fid in closes]
        ops.append({"op": "open", "path": path, "mode": mode})
        try:
            reply = yield from self._rpc(MsgKind.LOCK_BATCH, {"ops": ops},
                                         srv, route=("path", path))
        except (DeliveryError, NackError):
            # The piggybacked closes may not have landed: re-queue them
            # so the census rides a later batch.
            self._pending_closes.setdefault(srv, [])[:0] = closes
            raise
        res = dict(reply.payload["results"][-1])
        if not res.pop("ok", False):
            # Surface the failed open sub-op exactly as a split-protocol
            # OPEN would: a NackError carrying the server's error.
            req = Message(src=self.name, dst=srv, kind=MsgKind.LOCK_INTENT,
                          payload={"op": "open", "path": path})
            raise NackError(req, Nack(src=srv, dst=self.name,
                                      reply_to=req.msg_id,
                                      payload={"error": res.get("error", "")}))
        return res

    def read(self, fd: int, offset: int, nbytes: int,
             ) -> Generator[Event, Any, List[Tuple[int, Optional[str]]]]:
        """Read a byte range; returns ``(logical_block, tag)`` pairs.

        Serves from cache under a SHARED-or-better lock; misses go
        directly to the SAN.
        """
        of = self.fds.get(fd)
        yield from self._admit(of.server)
        self._enter()
        pinned = False
        try:
            yield from self._ensure_lock(of, LockMode.SHARED)
            self._pin_file(of.file_id)
            pinned = True
            first, count = byte_range_to_blocks(offset, nbytes)
            out: List[Tuple[int, Optional[str]]] = []
            missing: List[int] = []
            for lb in range(first, first + count):
                page = self.cache.get(of.file_id, lb)
                if page is not None:
                    out.append((lb, page.tag))
                else:
                    missing.append(lb)
            if missing:
                fetched = yield from self._fetch_blocks(of, missing)
                out.extend(fetched)
            out.sort(key=lambda t: t[0])
            for lb, tag in out:
                device, lba = of.resolve(lb)
                self.trace.emit(self.sim.now, "app.read", self.name,
                                file_id=of.file_id, block=lb, tag=tag,
                                device=device, lba=lba)
            self.ops_completed += 1
            return out
        finally:
            if pinned:
                self._unpin_file(of.file_id)
            self._exit()

    def write(self, fd: int, offset: int, nbytes: int,
              ) -> Generator[Event, Any, str]:
        """Write a byte range into the cache (write-back); returns the tag.

        The acknowledgment to the application happens when this returns
        — durability is the write-back machinery's job, and losing the
        tag silently afterwards is an audit violation.
        """
        of = self.fds.get(fd)
        yield from self._admit(of.server)
        if of.mode != "w":
            raise PermissionError(f"fd {fd} not open for writing")
        self._enter()
        pinned = False
        try:
            yield from self._ensure_lock(of, LockMode.EXCLUSIVE)
            self._pin_file(of.file_id)
            pinned = True
            end = offset + nbytes
            if end > of.extents.size_bytes:
                if self.config.use_intents:
                    # Growth folds into a setattr intent: the reply is
                    # op-result + (idempotent) grant in one round trip.
                    sent_at = self.sim.now
                    reply = yield from self._rpc(
                        MsgKind.LOCK_INTENT,
                        {"op": "setattr", "file_id": of.file_id,
                         "size": end},
                        of.server, route=("file", of.file_id))
                    lock = reply.payload.get("lock")
                    if (lock is not None
                            and not self._lock_reply_stale(of.file_id,
                                                           sent_at)):
                        self.locks.note_granted(of.file_id,
                                                LockMode(int(lock)))
                        of.lock = LockMode(int(lock))
                else:
                    reply = yield from self._rpc(
                        MsgKind.SETATTR,
                        {"file_id": of.file_id, "size": end},
                        of.server, route=("file", of.file_id))
                self._apply_meta_reply(of, reply.payload)
            tag = f"{self.name}:w{next(self._write_seq)}"
            first, count = byte_range_to_blocks(offset, nbytes)
            phys = []
            for lb in range(first, first + count):
                device, lba = of.resolve(lb)
                self.cache.write_dirty(of.file_id, lb, device, lba, tag)
                phys.append((device, lba))
            self.trace.emit(self.sim.now, "app.write.ack", self.name,
                            file_id=of.file_id, tag=tag,
                            blocks=list(range(first, first + count)),
                            phys=phys)
            self.ops_completed += 1
            return tag
        finally:
            if pinned:
                self._unpin_file(of.file_id)
            self._exit()

    def flush(self, fd: Optional[int] = None) -> Generator[Event, Any, int]:
        """Write dirty pages (of one file, or all) to the SAN; returns the
        number of pages hardened."""
        file_id = self.fds.get(fd).file_id if fd is not None else None
        return (yield from self._flush_dirty(file_id))

    def close(self, fd: int) -> Generator[Event, Any, None]:
        """Close a descriptor.  Flushes that file's dirty pages first;
        the data lock stays cached (lock caching, §3.1)."""
        of = self.fds.get(fd)
        yield from self._flush_dirty(of.file_id)
        self._enter()
        try:
            if self.config.use_intents:
                # Close is advisory bookkeeping (§3.1), so it need not
                # cost a datagram: the census update rides the next
                # LOCK_BATCH to this server.
                self._pending_closes.setdefault(of.server,
                                                []).append(of.file_id)
            else:
                try:
                    yield from self._rpc(MsgKind.CLOSE,
                                         {"file_id": of.file_id}, of.server)
                except (DeliveryError, NackError):
                    pass  # close is advisory; lease machinery handles the failure
            self.fds.close(fd)
            self.ops_completed += 1
        finally:
            self._exit()

    def read_range_locked(self, fd: int, offset: int, nbytes: int,
                          ) -> Generator[Event, Any, List[Tuple[int, Optional[str]]]]:
        """Read under a SHARED byte-range lock (sub-file sharing).

        Acquire→I/O→release: the range lock is held only for the
        duration of the operation and the data is read from the SAN, so
        concurrent writers of *other* ranges proceed in parallel.  The
        open instance needs no whole-file lock (`open_file` with
        ``mode='r'`` still takes S; use this for files opened by a
        range-locking application).
        """
        of = self.fds.get(fd)
        yield from self._admit(of.server)
        self._enter()
        try:
            yield from self._rpc(MsgKind.RANGE_ACQUIRE,
                                 {"file_id": of.file_id, "start": offset,
                                  "end": offset + nbytes,
                                  "mode": int(LockMode.SHARED)}, of.server,
                                 route=("file", of.file_id))
            try:
                first, count = byte_range_to_blocks(offset, nbytes)
                out = yield from self._fetch_blocks(
                    of, list(range(first, first + count)))
                for lb, tag in out:
                    device, lba = of.resolve(lb)
                    self.trace.emit(self.sim.now, "app.read", self.name,
                                    file_id=of.file_id, block=lb, tag=tag,
                                    device=device, lba=lba)
                self.ops_completed += 1
                return sorted(out)
            finally:
                yield from self._rpc(MsgKind.RANGE_RELEASE,
                                     {"file_id": of.file_id, "start": offset,
                                      "end": offset + nbytes}, of.server,
                                     route=("file", of.file_id))
        finally:
            self._exit()

    def write_range_locked(self, fd: int, offset: int, nbytes: int,
                           ) -> Generator[Event, Any, str]:
        """Write under an EXCLUSIVE byte-range lock, write-*through*.

        The data is hardened to the SAN before the range lock is
        released, so the lock hand-off is also the visibility hand-off —
        no write-back state outlives the lock.
        """
        of = self.fds.get(fd)
        yield from self._admit(of.server)
        self._enter()
        try:
            yield from self._rpc(MsgKind.RANGE_ACQUIRE,
                                 {"file_id": of.file_id, "start": offset,
                                  "end": offset + nbytes,
                                  "mode": int(LockMode.EXCLUSIVE)}, of.server,
                                 route=("file", of.file_id))
            try:
                tag = f"{self.name}:w{next(self._write_seq)}"
                first, count = byte_range_to_blocks(offset, nbytes)
                by_device: Dict[str, Dict[int, str]] = {}
                phys = []
                for lb in range(first, first + count):
                    device, lba = of.resolve(lb)
                    by_device.setdefault(device, {})[lba] = tag
                    phys.append((device, lba))
                for device, block_tags in by_device.items():
                    yield from self.san.write(self.name, device, block_tags)
                self.trace.emit(self.sim.now, "app.write.ack", self.name,
                                file_id=of.file_id, tag=tag,
                                blocks=list(range(first, first + count)),
                                phys=phys)
                self.ops_completed += 1
                return tag
            finally:
                yield from self._rpc(MsgKind.RANGE_RELEASE,
                                     {"file_id": of.file_id, "start": offset,
                                      "end": offset + nbytes}, of.server,
                                     route=("file", of.file_id))
        finally:
            self._exit()

    def read_ranges_locked(self, fd: int, ranges: List[Tuple[int, int]],
                           ) -> Generator[Event, Any, List[List[Tuple[int, Optional[str]]]]]:
        """Read several ``(offset, nbytes)`` ranges under SHARED range
        locks.  Without intents this is exactly N ``read_range_locked``
        calls; with intents the acquisitions coalesce into one
        LOCK_BATCH (adjacent ranges merge into one grant) and the
        releases into another — 2 round trips instead of 2N."""
        if not self.config.use_intents:
            out = []
            for offset, nbytes in ranges:
                out.append((yield from self.read_range_locked(fd, offset,
                                                              nbytes)))
            return out
        of = self.fds.get(fd)
        yield from self._admit(of.server)
        self._enter()
        try:
            spans = yield from self._batch_acquire(of, ranges,
                                                   LockMode.SHARED)
            try:
                out = []
                for offset, nbytes in ranges:
                    first, count = byte_range_to_blocks(offset, nbytes)
                    got = yield from self._fetch_blocks(
                        of, list(range(first, first + count)))
                    for lb, tag in got:
                        device, lba = of.resolve(lb)
                        self.trace.emit(self.sim.now, "app.read", self.name,
                                        file_id=of.file_id, block=lb, tag=tag,
                                        device=device, lba=lba)
                    self.ops_completed += 1
                    out.append(sorted(got))
                return out
            finally:
                yield from self._batch_release(of, spans)
        finally:
            self._exit()

    def write_ranges_locked(self, fd: int, ranges: List[Tuple[int, int]],
                            ) -> Generator[Event, Any, List[str]]:
        """Write several ``(offset, nbytes)`` ranges under EXCLUSIVE
        range locks, write-through (see ``write_range_locked``).  With
        intents, one LOCK_BATCH acquires, one releases."""
        if not self.config.use_intents:
            out = []
            for offset, nbytes in ranges:
                out.append((yield from self.write_range_locked(fd, offset,
                                                               nbytes)))
            return out
        of = self.fds.get(fd)
        yield from self._admit(of.server)
        self._enter()
        try:
            spans = yield from self._batch_acquire(of, ranges,
                                                   LockMode.EXCLUSIVE)
            try:
                tags = []
                for offset, nbytes in ranges:
                    tag = f"{self.name}:w{next(self._write_seq)}"
                    first, count = byte_range_to_blocks(offset, nbytes)
                    by_device: Dict[str, Dict[int, str]] = {}
                    phys = []
                    for lb in range(first, first + count):
                        device, lba = of.resolve(lb)
                        by_device.setdefault(device, {})[lba] = tag
                        phys.append((device, lba))
                    for device, block_tags in by_device.items():
                        yield from self.san.write(self.name, device,
                                                  block_tags)
                    self.trace.emit(self.sim.now, "app.write.ack", self.name,
                                    file_id=of.file_id, tag=tag,
                                    blocks=list(range(first, first + count)),
                                    phys=phys)
                    self.ops_completed += 1
                    tags.append(tag)
                return tags
            finally:
                yield from self._batch_release(of, spans)
        finally:
            self._exit()

    def _batch_acquire(self, of: OpenFile, ranges: List[Tuple[int, int]],
                       mode: LockMode,
                       ) -> Generator[Event, Any, List[Tuple[int, int]]]:
        """Acquire range locks for every ``(offset, nbytes)`` in one
        LOCK_BATCH; returns the distinct granted spans (the server may
        have coalesced or widened them) for the paired release."""
        ops = [{"op": "range_acquire", "file_id": of.file_id,
                "start": offset, "end": offset + nbytes, "mode": int(mode)}
               for offset, nbytes in ranges]
        reply = yield from self._rpc(MsgKind.LOCK_BATCH, {"ops": ops},
                                     of.server, route=("file", of.file_id))
        spans = {(int(r["start"]), int(r["end"]))
                 for r in reply.payload["results"] if r.get("ok")}
        return sorted(spans)

    def _batch_release(self, of: OpenFile, spans: List[Tuple[int, int]],
                       ) -> Generator[Event, Any, None]:
        """Release the granted spans in one LOCK_BATCH."""
        if not spans:
            return
        ops = [{"op": "range_release", "file_id": of.file_id,
                "start": start, "end": end} for start, end in spans]
        yield from self._rpc(MsgKind.LOCK_BATCH, {"ops": ops}, of.server,
                             route=("file", of.file_id))

    def unlink(self, path: str) -> Generator[Event, Any, None]:
        """Remove a file.  The server demands the data lock from any
        cacher first; this client's own pages and lock are dropped."""
        srv = self.server_for_path(path)
        yield from self._admit(srv)
        self._enter()
        try:
            reply = yield from self._rpc(MsgKind.UNLINK, {"path": path}, srv,
                                         route=("path", path))
            fid = int(reply.payload["file_id"])
            self.cache.invalidate_file(fid)
            self.locks.note_released(fid)
            self._file_server.pop(fid, None)
            self._file_slot.pop(fid, None)
            for of in self.fds.by_file_id(fid):
                of.stale = True
                of.lock = LockMode.NONE
            self.ops_completed += 1
        finally:
            self._exit()

    def readdir(self, path: str = "/") -> Generator[Event, Any, List[str]]:
        """List entries under a directory, merged across all servers.

        This replaces a single-RPC implementation that asked exactly one
        server — the path's owner on a single-server installation, else
        the primary — and therefore silently listed only that server's
        slice of a sharded namespace.  The RPC now fans out to every
        namespace owner (the shard map's owners under a cluster, every
        configured server otherwise) and merges the slices; a server
        that is down or quiesced just drops out of the merge rather than
        failing the whole listing, unless *no* server answers.
        """
        if len(self.servers) == 1:
            targets: List[str] = [self.servers[0]]
        elif self.shard_map is not None:
            targets = list(self.shard_map.owners())
        else:
            targets = list(self.servers)
        entries: set = set()
        answered = False
        last_exc: Optional[Exception] = None
        for srv in targets:
            try:
                yield from self._admit(srv)
                self._enter()
                try:
                    reply = yield from self._rpc(MsgKind.READDIR,
                                                 {"path": path}, srv)
                finally:
                    self._exit()
            except (ClientQuiescedError, ClientDisconnectedError,
                    DeliveryError, NackError) as exc:
                last_exc = exc
                continue
            answered = True
            entries.update(reply.payload["entries"])
        if not answered and last_exc is not None:
            raise last_exc
        self.ops_completed += 1
        return sorted(entries)

    def getattr(self, path: str) -> Generator[Event, Any, FileAttributes]:
        """Fetch a file's attributes from its owning server.

        With ``attr_cache_ttl > 0`` a cached copy may be served — the
        weak metadata consistency the paper allows (footnote 1):
        modifications propagate eventually, never instantaneously.
        """
        srv = self.server_for_path(path)
        ttl = self.config.attr_cache_ttl
        if ttl > 0:
            cached = self._attr_cache.get(path)
            if cached is not None and                     self.endpoint.local_now() - cached[1] < ttl:
                lease = self.leases.get(srv)
                if lease is None or lease.phase().cache_usable:
                    self.attr_cache_hits += 1
                    self.ops_completed += 1
                    return cached[0]
        yield from self._admit(srv)
        self._enter()
        try:
            reply = yield from self._rpc(MsgKind.GETATTR, {"path": path}, srv,
                                         route=("path", path))
            self.ops_completed += 1
            attrs = FileAttributes.from_payload(reply.payload["attrs"])
            if ttl > 0:
                self._attr_cache[path] = (attrs, self.endpoint.local_now())
            return attrs
        finally:
            self._exit()

    def lookup(self, path: str) -> Generator[Event, Any, int]:
        """Resolve a path to its file id without opening or locking it.

        The lightest metadata read the server offers — and the bread and
        butter of the in-network cache tier, which serves repeats of it
        without a server transaction.
        """
        srv = self.server_for_path(path)
        yield from self._admit(srv)
        self._enter()
        try:
            reply = yield from self._rpc(MsgKind.LOOKUP, {"path": path}, srv,
                                         route=("path", path))
            self.ops_completed += 1
            return int(reply.payload["file_id"])
        finally:
            self._exit()

    # -- introspection ------------------------------------------------------
    @property
    def lease(self) -> Optional[ClientLeaseManager]:
        """Lease manager for the primary server (None when disabled)."""
        return self.leases.get(self.server)

    def lease_for(self, server: str) -> Optional[ClientLeaseManager]:
        """Lease manager for a specific server."""
        return self.leases.get(server)

    @property
    def phase(self) -> LeasePhase:
        """Current primary-lease phase (VALID when leases are disabled)."""
        lease = self.lease
        return lease.phase() if lease else LeasePhase.VALID

    @property
    def connected(self) -> bool:
        """Whether a valid primary lease is held (True without leases)."""
        lease = self.lease
        return lease.active if lease else True

    # -- flyweight parking (scale path) ---------------------------------
    def park_blockers(self) -> List[str]:
        """Why this client cannot park right now (empty when clean).

        Parking folds the client back into its flyweight record, so it
        must hold nothing the protocol obliges it to resolve first: no
        dirty pages (§3.2 flush duty), no held locks, no open files and
        no in-flight operations.
        """
        blockers = []
        if self._in_flight:
            blockers.append(f"{self._in_flight} operations in flight")
        if self.cache.dirty_pages(None):
            blockers.append("dirty pages in cache")
        if self.locks.all_held():
            blockers.append("locks held")
        if self.fds.all_open():
            blockers.append("open files")
        return blockers

    def shutdown_for_park(self) -> None:
        """Tear down every standing resource this facade owns.

        Interrupts the write-back daemon and each lease daemon (their
        pending timers become inert and drain as no-ops), detaches the
        endpoint from the control network and the initiator from the
        SAN.  After this the object is garbage; the pooled record and
        the :class:`~repro.lease.pooled.PooledLeaseService` carry
        everything that outlives it.
        """
        if self._writeback_proc is not None and self._writeback_proc.is_alive:
            self._writeback_proc.interrupt()
            self._writeback_proc = None
        for mgr in self.leases.values():
            if mgr._daemon.is_alive:
                mgr._daemon.interrupt()
        self.endpoint.net.detach(self.name)
        self.san.detach_initiator(self.name)

    def overhead_snapshot(self) -> Dict[str, float]:
        """Client-side counters for E7/E9 (``ClientAgent`` conformance)."""
        return {
            "ops_completed": float(self.ops_completed),
            "ops_rejected": float(self.ops_rejected),
            "app_errors": float(self.app_errors),
            "keepalives_sent": float(self.keepalives_sent),
            "lease_msgs_sent": float(self.keepalives_sent),
            "cache_hit_rate": float(self.cache.stats.hit_rate),
            "messages_per_op": self.messages_per_op(),
        }

    def rpc_by_kind(self) -> Dict[str, int]:
        """RPC round trips this client initiated, by message kind."""
        return dict(self.endpoint.rpc_sent)

    def messages_per_op(self, exclude_keepalives: bool = True) -> float:
        """Client-originated RPCs per completed application op.

        Keep-alives are excluded by default: they are the lease
        protocol's fixed-rate background (§3.2), not per-op traffic, and
        the E-intent comparison is about the per-op message count."""
        sent = self.endpoint.rpc_sent
        total = sum(n for k, n in sent.items()
                    if not (exclude_keepalives and k == MsgKind.KEEPALIVE))
        return total / self.ops_completed if self.ops_completed else 0.0

    # -- routing ---------------------------------------------------------
    def server_for_path(self, path: str) -> str:
        """The metadata server owning a path (shard map when clustered,
        stable hash routing otherwise)."""
        if self.shard_map is not None:
            return self.shard_map.owner_of_path(path)
        if len(self.servers) == 1:
            return self.servers[0]
        from repro.sim.rng import _stable_hash
        return self.servers[_stable_hash(path) % len(self.servers)]

    def server_for_file(self, file_id: int) -> str:
        """The server owning a file id (primary if unknown)."""
        if self.shard_map is not None:
            slot = self._file_slot.get(file_id)
            if slot is not None:
                return self.shard_map.owner_of_slot(slot)
        return self._file_server.get(file_id, self.server)

    def _note_file_owner(self, fid: int, path: str) -> None:
        """Record a file's owner (and its ring slot when clustered)."""
        if self.shard_map is not None:
            from repro.cluster.shardmap import slot_of_path
            self._file_slot[fid] = slot_of_path(path)
        self._file_server[fid] = self.server_for_path(path)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _rpc(self, kind: str, payload: Dict[str, Any],
             server: Optional[str] = None,
             route: Optional[Tuple[str, Any]] = None,
             ) -> Generator[Event, Any, Message]:
        """One request, with cluster rerouting.

        ``route`` names what the request addresses — ``("path", p)`` or
        ``("file", fid)`` — so a ``WRONG_OWNER`` or ``map_stale`` NACK
        (slot moved, or the target silenced itself after losing the
        coordinator) can be retried: refetch the shard map, re-derive
        the owner, and resend.  Bounded, and inert without a cluster.
        """
        target = server or self.server
        attempts = 0
        while True:
            try:
                return (yield from self.endpoint.request(target, kind, payload))
            except NackError as exc:
                if self.shard_map is None or not _routing_refusal(exc):
                    raise
                attempts += 1
                if attempts > 3:
                    raise
                self.rerouted_ops += 1
                yield from self._refresh_map()
                new_target = self._route_target(route, target)
                if new_target == target:
                    # Map unchanged (e.g. the owner is silenced but not
                    # yet reassigned): back off before asking again.
                    yield self.endpoint.local_timeout(0.5)
                target = new_target

    def _route_target(self, route: Optional[Tuple[str, Any]],
                      current: str) -> str:
        if route is None or self.shard_map is None:
            return current
        what, key = route
        if what == "path":
            return self.server_for_path(key)
        return self.server_for_file(int(key))

    def _refresh_map(self) -> Generator[Event, Any, None]:
        """Pull the current shard map from the coordinator."""
        if self.coordinator is None:
            return
        from repro.cluster.shardmap import ShardMap
        try:
            reply = yield from self.endpoint.request(
                self.coordinator, MsgKind.CLUSTER_MAP_FETCH, {})
        except (DeliveryError, NackError):
            return
        self._apply_map(ShardMap.from_payload(reply.payload["map"]))

    def _on_map_push(self, msg: Message):
        """Coordinator-pushed map update (takeover/failback broadcast)."""
        from repro.cluster.shardmap import ShardMap
        self._apply_map(ShardMap.from_payload(msg.payload["map"]))
        return ("ack", {})

    def _apply_map(self, new_map: Any) -> None:
        """Adopt a newer shard map and migrate per-file bookkeeping.

        Every file whose slot moved is re-pointed at its new owner
        (``_file_server`` and open instances), and for each server that
        gained files we hold locks from, a reassertion pass re-claims
        them there — the same client-driven recovery as a restart, §6.
        """
        if self.shard_map is None:
            return
        if new_map.epoch <= self.shard_map.epoch:
            return
        self.shard_map = new_map
        gained: set = set()
        for fid, slot in self._file_slot.items():
            owner = new_map.owner_of_slot(slot)
            if self._file_server.get(fid) != owner:
                self._file_server[fid] = owner
                self.shard_migrations += 1
                if self.locks.mode_of(fid) != LockMode.NONE:
                    gained.add(owner)
        for of in self.fds.all_open():
            owner = self.server_for_file(of.file_id)
            if of.server != owner:
                of.server = owner
        self.trace.emit(self.sim.now, "client.map_update", self.name,
                        epoch=new_map.epoch, migrated=len(gained))
        for srv in sorted(gained):
            self.sim.process(self._reassert_locks(srv),
                             name=f"{self.name}:reassert:{srv}")

    def _on_ack_renew(self, msg: Message, t_send: float) -> None:
        lease = self.leases.get(msg.src)
        if lease is not None:
            lease.renew(t_send)

    def _on_nack(self, msg: Message) -> None:
        # Only the transport-level lease NACK (§3.3) invalidates the
        # lease; ordinary error replies ("exists", "no such file",
        # "reassert_conflict") are application outcomes.
        if not msg.payload.get("__lease_nack__"):
            return
        lease = self.leases.get(msg.src)
        if lease is not None:
            lease.on_nack()

    def _admit(self, server: Optional[str] = None) -> Generator[Event, Any, None]:
        """Gate new application requests on the target server's lease
        phase (§3.2)."""
        if self.admission_check is not None and not self.admission_check():
            self.ops_rejected += 1
            self.trace.emit(self.sim.now, "app.rejected", self.name, phase=-1)
            raise ClientDisconnectedError(f"{self.name}: agent lease invalid")
        lease = self.leases.get(server or self.server)
        if lease is None:
            return
        while True:
            ph = lease.phase()
            if ph.serves_new_requests:
                return
            if not lease.active and not lease._ever_active:
                return  # first contact bootstraps the lease
            if self.config.quiesce_behavior == "error":
                self.ops_rejected += 1
                self.trace.emit(self.sim.now, "app.rejected", self.name, phase=int(ph))
                if ph == LeasePhase.EXPIRED:
                    raise ClientDisconnectedError(f"{self.name}: no valid lease")
                raise ClientQuiescedError(f"{self.name}: lease phase {ph.name}")
            self._resume_ev = self.sim.event()
            yield self._resume_ev
        return

    def _enter(self) -> None:
        self._in_flight += 1
        if self._drained.triggered:
            self._drained = self.sim.event()

    def _exit(self) -> None:
        self._in_flight -= 1
        if self._in_flight == 0 and not self._drained.triggered:
            self._drained.succeed()

    def _pin_file(self, file_id: int) -> None:
        """Mark an operation as actively using this file's lock."""
        self._file_inflight[file_id] = self._file_inflight.get(file_id, 0) + 1

    def _unpin_file(self, file_id: int) -> None:
        n = self._file_inflight.get(file_id, 1) - 1
        if n <= 0:
            self._file_inflight.pop(file_id, None)
            ev = self._file_drain_evs.pop(file_id, None)
            if ev is not None and not ev.triggered:
                ev.succeed()
        else:
            self._file_inflight[file_id] = n

    def _wait_file_drain(self, file_id: int) -> Generator[Event, Any, None]:
        """Wait until no operation is using the file's lock."""
        while self._file_inflight.get(file_id, 0) > 0:
            ev = self._file_drain_evs.get(file_id)
            if ev is None or ev.triggered:
                ev = self.sim.event()
                self._file_drain_evs[file_id] = ev
            yield ev

    def _note_lock_revoked(self, file_id: int) -> None:
        """Record that this client gave up (or lost) the file's lock now."""
        self._lock_revoked_at[file_id] = self.sim.now

    def _lock_reply_stale(self, file_id: int, sent_at: float) -> bool:
        """True if a lock mode in a reply to a request sent at ``sent_at``
        must be discarded: the lock was (or is being) revoked since the
        request left, so the grant describes a lock we no longer hold."""
        return (file_id in self._revoking
                or self._lock_revoked_at.get(file_id, -1.0) >= sent_at)

    def _ensure_lock(self, of: OpenFile, mode: LockMode,
                     ) -> Generator[Event, Any, None]:
        """Make sure the open instance is covered by ``mode``.

        While a demand compliance is revoking this file's lock, new
        operations must not ride the dying lock: they go to the server,
        whose waiter queue serializes them behind the revocation.
        """
        while True:
            while of.file_id in self._revoking:
                yield self.sim.timeout(0.01)
            wanted = max(mode, of.wanted_lock) if not of.stale \
                else of.wanted_lock
            if not of.stale and self.locks.covers(of.file_id, mode):
                if of.lock < mode:
                    of.lock = self.locks.mode_of(of.file_id)
                return
            sent_at = self.sim.now
            reply = yield from self._rpc(MsgKind.LOCK_ACQUIRE,
                                         {"file_id": of.file_id,
                                          "mode": int(wanted)},
                                         of.server, route=("file", of.file_id))
            if not self._lock_reply_stale(of.file_id, sent_at):
                break
            # The grant was revoked while the reply was in flight (e.g.
            # a demand compliance released it): discard and re-acquire
            # against the server's current state.
            self.cache.invalidate_file(of.file_id)
            of.stale = True
        granted = LockMode(int(reply.payload["mode"]))
        self.locks.note_granted(of.file_id, granted)
        if of.stale:
            # Revalidation after staleness: cached pages may be outdated.
            self.cache.invalidate_file(of.file_id)
            of.stale = False
        # The grant's own payload carries fresh attrs/extents — adopt
        # them instead of re-fetching through a second parse path.
        self._apply_meta_reply(of, reply.payload)
        of.lock = granted

    def _apply_meta_reply(self, of: OpenFile, payload: Dict[str, Any]) -> None:
        """Adopt the attrs/extents a reply carried (missing keys keep
        the current view) — the single parse path for every reply that
        returns file metadata alongside its main result."""
        attrs = payload.get("attrs")
        if attrs:
            of.attrs = FileAttributes.from_payload(attrs)
        ext = payload.get("extents")
        if ext:
            of.extents = extents_from_payload(ext)

    def _fetch_blocks(self, of: OpenFile, blocks: List[int],
                      ) -> Generator[Event, Any, List[Tuple[int, Optional[str]]]]:
        """Read missing blocks (direct SAN, or function-shipped through
        the server for the E1 traditional baseline) into the cache."""
        out: List[Tuple[int, Optional[str]]] = []
        for lb in blocks:
            device, lba = of.resolve(lb)
            if self.config.data_path == "server":
                reply = yield from self._rpc(MsgKind.DATA_READ,
                                             {"file_id": of.file_id, "block": lb},
                                             of.server,
                                             route=("file", of.file_id))
                tag = reply.payload.get("tag")
                version = int(reply.payload.get("version", -1))
            else:
                try:
                    results = yield from self.san.read(self.name, device, lba, 1)
                except (FencedIoError, SanUnreachableError) as exc:
                    self.app_errors += 1
                    self.trace.emit(self.sim.now, "app.error", self.name,
                                    file_id=of.file_id, tag=None,
                                    reason=type(exc).__name__)
                    raise ClientIOError(str(exc)) from exc
                tag, version = results[0].tag, results[0].version
            self.cache.put_clean(Page(file_id=of.file_id, logical_block=lb,
                                      device=device, lba=lba, tag=tag,
                                      version=version))
            out.append((lb, tag))
        return out

    # -- write-back -----------------------------------------------------------
    def _writeback_daemon(self) -> Generator[Event, Any, None]:
        while True:
            yield self.endpoint.local_timeout(self.config.writeback_interval)
            yield from self._flush_dirty(None)

    def _flush_dirty(self, file_id: Optional[int],
                     report_errors: bool = True) -> Generator[Event, Any, int]:
        """Harden dirty pages to the SAN; returns pages flushed.

        SAN failures (fence, partition) emit ``app.error`` for every
        affected tag — the client *detects and reports*, which is the
        behaviour fencing-only cannot deliver before its first I/O.
        """
        dirty = self.cache.dirty_pages(file_id)
        if not dirty:
            return 0
        if self.config.data_path == "server":
            return (yield from self._flush_via_server(dirty, report_errors))
        by_device: Dict[str, List[Page]] = {}
        for p in dirty:
            by_device.setdefault(p.device, []).append(p)
        flushed = 0
        for device, pages in by_device.items():
            block_tags = {p.lba: p.tag for p in pages if p.tag is not None}
            try:
                versions = yield from self.san.write(self.name, device, block_tags)
            except (FencedIoError, SanUnreachableError) as exc:
                if report_errors:
                    for p in pages:
                        self.app_errors += 1
                        self.trace.emit(self.sim.now, "app.error", self.name,
                                        file_id=p.file_id, tag=p.tag,
                                        reason=type(exc).__name__)
                        self.cache.invalidate_file(p.file_id)
                continue
            for p in pages:
                self.cache.mark_flushed(p, versions.get(p.lba, -1))
                self.trace.emit(self.sim.now, "cache.flushed", self.name,
                                file_id=p.file_id, tag=p.tag,
                                block=p.logical_block, device=p.device, lba=p.lba)
                flushed += 1
        return flushed

    def _flush_via_server(self, dirty: List[Page], report_errors: bool,
                          ) -> Generator[Event, Any, int]:
        """Function-shipped write-back (E1 baseline): each dirty page goes
        to the server over the control network."""
        flushed = 0
        for p in dirty:
            try:
                reply = yield from self._rpc(
                    MsgKind.DATA_WRITE,
                    {"file_id": p.file_id, "block": p.logical_block,
                     "tag": p.tag, "data_bytes": BLOCK_SIZE},
                    self.server_for_file(p.file_id),
                    route=("file", p.file_id))
            except (DeliveryError, NackError) as exc:
                if report_errors:
                    self.app_errors += 1
                    self.trace.emit(self.sim.now, "app.error", self.name,
                                    file_id=p.file_id, tag=p.tag,
                                    reason=type(exc).__name__)
                    self.cache.invalidate_file(p.file_id)
                continue
            self.cache.mark_flushed(p, int(reply.payload.get("version", -1)))
            self.trace.emit(self.sim.now, "cache.flushed", self.name,
                            file_id=p.file_id, tag=p.tag,
                            block=p.logical_block, device=p.device, lba=p.lba)
            flushed += 1
        return flushed

    # -- lease callbacks -------------------------------------------------------
    def _keepalive_sender(self, server: str):
        def spawn() -> None:
            def send() -> Generator[Event, Any, None]:
                self.keepalives_sent += 1
                self._m_lease_msgs.inc()
                self.trace.emit(self.sim.now, "lease.keepalive", self.name,
                                server=server)
                try:
                    yield from self._rpc(MsgKind.KEEPALIVE, {}, server)
                except (DeliveryError, NackError):
                    pass  # listeners already informed the lease manager
            self.sim.process(send(), name=f"{self.name}:keepalive:{server}")
        return spawn

    def _quiesce(self) -> None:
        self._quiesced = True
        self.trace.emit(self.sim.now, "client.quiesce", self.name)

    def _unquiesce(self) -> None:
        if self._quiesced:
            self.trace.emit(self.sim.now, "client.resume", self.name)
        self._quiesced = False
        if not self._resume_ev.triggered:
            self._resume_ev.succeed()

    def _files_of_server(self, server: str) -> List[int]:
        return [fid for fid, srv in self._file_server.items() if srv == server]

    def _flush_all_spawner(self, server: str):
        def spawn() -> None:
            def run() -> Generator[Event, Any, None]:
                # Phase 3 ends before phase 4 begins: in-flight operations
                # have until the flush boundary to drain (§3.2); we start
                # flushing immediately but wait for stragglers too.
                if self._in_flight and not self._drained.triggered:
                    yield self._drained
                if len(self.servers) == 1:
                    yield from self._flush_dirty(None)
                else:
                    for fid in self._files_of_server(server):
                        yield from self._flush_dirty(fid)
            self.sim.process(run(), name=f"{self.name}:phase4-flush:{server}")
        return spawn

    def _expiry_handler(self, server: str):
        def on_expired() -> None:
            self._on_lease_expired(server)
        return on_expired

    def _on_lease_expired(self, server: Optional[str] = None) -> None:
        """Invalidate cache and cede locks — for one server's files in a
        multi-server installation, or everything otherwise."""
        # Attest the lapse: every subsequent RPC carries the bumped
        # generation, which is the server's evidence that this client
        # *observed* phase 4 and discarded its state — the precondition
        # for lifting a §6 fence.  A client that never quiesces (or a
        # pre-lapse retry) never carries a fresh generation.
        self.endpoint.lapse_gen += 1
        if server is None or len(self.servers) == 1:
            dropped = self.cache.invalidate_all()
            for fid, _mode in self.locks.all_held():
                self._note_lock_revoked(fid)
            self.locks.drop_all()
            self.fds.mark_all_stale()
            self._attr_cache.clear()
        else:
            dropped = []
            fids = self._files_of_server(server)
            for fid in fids:
                dropped.extend(self.cache.invalidate_file(fid))
                self._note_lock_revoked(fid)
                self.locks.note_released(fid)
            self.fds.mark_stale_for(fids)
        for p in dropped:
            # Dirty data that survived phase 4 could not be hardened;
            # report the loss to the application rather than hide it.
            self.app_errors += 1
            self.trace.emit(self.sim.now, "app.error", self.name,
                            file_id=p.file_id, tag=p.tag, reason="lease_expired")
        self.trace.emit(self.sim.now, "client.lease_lost", self.name,
                        server=server or self.server,
                        dirty_dropped=len(dropped),
                        in_flight=self._in_flight)

    # -- §6 server recovery: lock reassertion ---------------------------------
    def _on_epoch(self, msg: Message, _t_send: float) -> None:
        epoch = msg.payload.get("__epoch__")
        if epoch is None:
            return
        known = self._server_epoch.get(msg.src)
        if known is None:
            self._server_epoch[msg.src] = int(epoch)
            return
        if int(epoch) != known:
            self._server_epoch[msg.src] = int(epoch)
            self.trace.emit(self.sim.now, "client.epoch_change", self.name,
                            server=msg.src, epoch=int(epoch))
            self.sim.process(self._reassert_locks(msg.src),
                             name=f"{self.name}:reassert:{msg.src}")

    def _reassert_locks(self, server: str) -> Generator[Event, Any, None]:
        """Re-claim every cached lock held from a restarted (or, under a
        cluster, newly owning) server.

        A refused reassertion (someone else claimed the object first)
        forfeits the lock and invalidates that file's cache.
        """
        pending = [(obj, mode) for obj, mode in self.locks.all_held()
                   if self.server_for_file(obj) == server]
        for i, (obj, mode) in enumerate(pending):
            try:
                yield from self._reassert_one(obj, mode, server)
            except DeliveryError:
                # Server unreachable again, and the epoch is already
                # recorded — no later ACK will restart this sweep.  A
                # lock the restarted server never re-learned is a lock
                # it will happily grant elsewhere once its grace window
                # closes, so forfeit everything not yet reasserted.
                for fobj, _fmode in pending[i:]:
                    self._note_lock_revoked(fobj)
                    self.locks.note_released(fobj)
                    dropped = self.cache.invalidate_file(fobj)
                    for p in dropped:
                        self.app_errors += 1
                        self.trace.emit(self.sim.now, "app.error", self.name,
                                        file_id=fobj, tag=p.tag,
                                        reason="reassert_abandoned")
                    for of in self.fds.by_file_id(fobj):
                        of.lock = LockMode.NONE
                        of.stale = True
                return

    def _reassert_one(self, obj: int, mode: LockMode, server: str,
                      retried: bool = False) -> Generator[Event, Any, None]:
        self.reasserts_sent += 1
        try:
            yield from self.endpoint.request(server, MsgKind.LOCK_REASSERT,
                                             {"file_id": obj,
                                              "mode": int(mode)})
            self.trace.emit(self.sim.now, "client.reasserted", self.name,
                            file_id=obj, mode=int(mode))
        except NackError as exc:
            if _routing_refusal(exc) and self.shard_map is not None \
                    and not retried:
                # The slot moved again (e.g. failback raced us): follow
                # the map once rather than forfeiting a live lock.
                self.rerouted_ops += 1
                yield from self._refresh_map()
                new_owner = self.server_for_file(obj)
                if new_owner != server:
                    yield from self._reassert_one(obj, mode, new_owner,
                                                  retried=True)
                    return
            self._note_lock_revoked(obj)
            self.locks.note_released(obj)
            dropped = self.cache.invalidate_file(obj)
            for p in dropped:
                self.app_errors += 1
                self.trace.emit(self.sim.now, "app.error", self.name,
                                file_id=obj, tag=p.tag,
                                reason="reassert_refused")
            for of in self.fds.by_file_id(obj):
                of.lock = LockMode.NONE
                of.stale = True

    def force_lease_expiry(self) -> None:
        """Invalidate the cache and cede all locks immediately.

        Used by baseline client agents (Frangipani heartbeats, V-leases)
        that manage lease lifetime outside the Storage Tank state machine.
        """
        self._on_lease_expired()

    # -- server-initiated handlers ----------------------------------------------
    def _on_lock_demand(self, msg: Message):
        """The server demands a lock back (conflict elsewhere).

        ACK immediately (receipt), then comply asynchronously: flush the
        file's dirty pages, then release or downgrade.
        """
        file_id = int(msg.payload["file_id"])
        needed = LockMode(int(msg.payload["needed_mode"]))
        self.sim.process(self._comply_demand(file_id, needed, msg.src),
                         name=f"{self.name}:comply:{file_id}")
        return ("ack", {"status": "demand_received"})

    def _on_range_demand(self, msg: Message):
        """A server probes a range-lock holder for liveness.

        Holders release ranges as part of the operation itself, so
        acknowledging receipt is the whole protocol; record which file
        drew the demand for the contention census.  Bare demands (no
        file named) are pure liveness pings and only need the ack.
        """
        file_id = msg.payload.get("file_id")
        if file_id is not None:
            fid = int(file_id)
            self.range_demands_seen[fid] = \
                self.range_demands_seen.get(fid, 0) + 1
        return ("ack", {})

    def _comply_demand(self, file_id: int, needed: LockMode, server: str,
                       ) -> Generator[Event, Any, None]:
        held = self.locks.mode_of(file_id)
        if held == LockMode.NONE:
            return
        # Stop new operations from riding the lock, drain current users,
        # then flush what they wrote — only then give the lock back.
        self._revoking.add(file_id)
        try:
            yield from self._wait_file_drain(file_id)
            yield from self._flush_dirty(file_id)
            yield from self._yield_lock(file_id, needed, server)
        finally:
            self._revoking.discard(file_id)

    def _yield_lock(self, file_id: int, needed: LockMode, server: str,
                    ) -> Generator[Event, Any, None]:
        held = self.locks.mode_of(file_id)
        if held == LockMode.NONE:
            return
        try:
            if needed == LockMode.SHARED and held == LockMode.EXCLUSIVE:
                yield from self._rpc(MsgKind.LOCK_DOWNGRADE,
                                     {"file_id": file_id,
                                      "to": int(LockMode.SHARED)}, server)
                self._note_lock_revoked(file_id)
                self.locks.note_downgraded(file_id, LockMode.SHARED)
                for of in self.fds.by_file_id(file_id):
                    of.lock = LockMode.SHARED
            else:
                self.cache.invalidate_file(file_id)
                yield from self._rpc(MsgKind.LOCK_RELEASE,
                                     {"file_id": file_id}, server)
                self._note_lock_revoked(file_id)
                self.locks.note_released(file_id)
                for of in self.fds.by_file_id(file_id):
                    of.lock = LockMode.NONE
        except (NackError, DeliveryError):
            # Either every ACK was lost, or a retransmit was NACKed by
            # the suspect gatekeeper (which answers before the dedup
            # cache).  In both cases the server may well have executed
            # the release (at-most-once) and granted the lock elsewhere,
            # while our lease keeps renewing off other traffic, so
            # expiry will not save us.  Forfeit locally — dropping a
            # lock we might still own is always safe.
            self.cache.invalidate_file(file_id)
            self._note_lock_revoked(file_id)
            self.locks.note_released(file_id)
            for of in self.fds.by_file_id(file_id):
                of.lock = LockMode.NONE
                of.stale = True

    def _on_cache_invalidate(self, msg: Message):
        """Server-pushed invalidation of a file's cached pages."""
        file_id = int(msg.payload["file_id"])
        self.cache.invalidate_file(file_id)
        return ("ack", {})
