"""Canned fault scenarios matching the paper's figures."""

from __future__ import annotations

from typing import Optional

from repro.core.system import StorageTankSystem
from repro.fault.injector import FaultInjector


def fig2_control_partition(system: StorageTankSystem, client: str = "c1",
                           at: float = 5.0) -> FaultInjector:
    """The paper's Fig. 2: the control network partitions around one
    client while the SAN stays intact — the canonical asymmetric
    two-network partition."""
    inj = FaultInjector(system)
    inj.at(at).isolate_client(client)
    return inj


def transient_partition(system: StorageTankSystem, client: str = "c1",
                        at: float = 5.0, duration: float = 6.0,
                        ) -> FaultInjector:
    """Fig. 5's setting: the client drops off the control network briefly
    (long enough to miss a message), then reappears and sends requests."""
    inj = FaultInjector(system)
    inj.at(at).isolate_client(client)
    inj.at(at + duration).heal_control()
    return inj


def client_crash(system: StorageTankSystem, client: str = "c1",
                 at: float = 5.0, restart_at: Optional[float] = None,
                 ) -> FaultInjector:
    """Hard client failure (volatile state lost); optional restart."""
    inj = FaultInjector(system)
    inj.at(at).crash_client_lossy(client)
    if restart_at is not None:
        inj.at(restart_at).restart_client(client)
    return inj


def server_crash(system: StorageTankSystem, server: str = "server2",
                 at: float = 5.0, restart_at: Optional[float] = None,
                 ) -> FaultInjector:
    """Hard metadata-server failure; optional restart.

    Under a cluster the coordinator detects the death, moves the shard
    to a survivor (takeover) and — if the server restarts — hands the
    shard back (failback).  Without a cluster the shard is simply
    unavailable until the restart's reassertion grace."""
    inj = FaultInjector(system)
    inj.at(at).crash_server(server)
    if restart_at is not None:
        inj.at(restart_at).restart_server(server)
    return inj


def san_partition(system: StorageTankSystem, client: str = "c1",
                  at: float = 5.0, heal_at: Optional[float] = None,
                  ) -> FaultInjector:
    """The client keeps its control-network connection but loses the SAN
    (the failure class where leasing "offers no improvements over
    fencing", §3)."""
    inj = FaultInjector(system)
    for dev in system.disks:
        inj.at(at).partition_san(client, dev)
    if heal_at is not None:
        inj.at(heal_at).heal_san()
    return inj
