"""Programmable fault schedules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.core.system import StorageTankSystem
from repro.sim.events import Event


@dataclass(frozen=True)
class _Step:
    time: float
    label: str
    action: Callable[[], None]


class FaultInjector:
    """Builds a timed fault schedule against one system and runs it.

    >>> inj = FaultInjector(system)
    >>> inj.at(5.0).isolate_client("c1")
    >>> inj.at(40.0).heal_control()
    >>> inj.start()
    """

    def __init__(self, system: StorageTankSystem):
        self.system = system
        self._steps: List[_Step] = []
        self._pending_time: Optional[float] = None
        self.log: List[Tuple[float, str]] = []

    # -- schedule building (fluent) ----------------------------------------
    def at(self, time: float) -> "FaultInjector":
        """Set the time for the next queued action."""
        self._pending_time = time
        return self

    def _add(self, label: str, action: Callable[[], None]) -> "FaultInjector":
        if self._pending_time is None:
            raise ValueError("call .at(time) before queueing an action")
        self._steps.append(_Step(self._pending_time, label, action))
        return self

    def isolate_client(self, client: str) -> "FaultInjector":
        """Symmetric control-network cut around one client (Fig. 2)."""
        sysm = self.system
        return self._add(f"isolate:{client}",
                         lambda: sysm.ctrl_partitions.isolate(client))

    def split_control(self, *groups) -> "FaultInjector":
        """Symmetric control-network split into groups."""
        sysm = self.system
        gs = [list(g) for g in groups]
        return self._add("split", lambda: sysm.ctrl_partitions.split(*gs))

    def block_one_way(self, src: str, dst: str) -> "FaultInjector":
        """Asymmetric control-network failure: src loses its path to dst."""
        sysm = self.system
        return self._add(f"oneway:{src}->{dst}",
                         lambda: sysm.control_net.block(src, dst))

    def heal_control(self) -> "FaultInjector":
        """Remove every control-network partition."""
        sysm = self.system
        return self._add("heal_control", sysm.control_net.heal_all)

    def partition_san(self, initiator: str, device: str) -> "FaultInjector":
        """Cut an initiator's SAN path to a device."""
        sysm = self.system
        return self._add(f"san_cut:{initiator}-{device}",
                         lambda: sysm.san.block_pair(initiator, device))

    def heal_san(self) -> "FaultInjector":
        """Remove every SAN partition."""
        sysm = self.system
        return self._add("heal_san", sysm.san.heal_all)

    def crash_client(self, client: str) -> "FaultInjector":
        """Stop the client's endpoint (volatile cache/locks conceptually
        lost with it; the node object stays for inspection)."""
        sysm = self.system
        return self._add(f"crash:{client}",
                         lambda: sysm.client(client).endpoint.crash())

    def restart_client(self, client: str) -> "FaultInjector":
        """Bring a crashed client's endpoint back."""
        sysm = self.system
        return self._add(f"restart:{client}",
                         lambda: sysm.client(client).endpoint.restart())

    def crash_server(self, server: str) -> "FaultInjector":
        """Fail a metadata server (volatile lock state lost, §6)."""
        sysm = self.system
        return self._add(f"crash:{server}",
                         lambda: sysm.server_node(server).crash())

    def restart_server(self, server: str) -> "FaultInjector":
        """Bring a crashed server back (new epoch; reassertion grace)."""
        sysm = self.system
        return self._add(f"restart:{server}",
                         lambda: sysm.server_node(server).restart())

    def custom(self, label: str, fn: Callable[[], None]) -> "FaultInjector":
        """Queue an arbitrary action."""
        return self._add(label, fn)

    # -- execution ------------------------------------------------------------
    def start(self):
        """Spawn the schedule as a simulation process."""
        steps = sorted(self._steps, key=lambda s: s.time)

        def run() -> Generator[Event, Any, None]:
            sim = self.system.sim
            for step in steps:
                delay = step.time - sim.now
                if delay > 0:
                    yield sim.timeout(delay)
                step.action()
                self.log.append((sim.now, step.label))
                self.system.trace.emit(sim.now, "fault.inject", "injector",
                                       label=step.label)
        return self.system.spawn(run(), "fault-injector")
