"""Programmable fault schedules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Mapping, Optional, Tuple

from repro.core.system import StorageTankSystem
from repro.fault.adversary import ByzantineClientAgent
from repro.sim.events import Event
from repro.sim.process import Process


class ScheduleError(ValueError):
    """A fault schedule was built or applied incorrectly."""


@dataclass(frozen=True)
class _Step:
    time: float
    label: str
    action: Callable[[], None]


#: Data-driven step vocabulary: kind -> (method name, required params).
#: Everything the randomized schedule generator (:mod:`repro.simtest`)
#: can emit maps onto one fluent-builder method, so a schedule is plain
#: data — serializable, replayable and shrinkable.
STEP_KINDS: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "isolate_client": ("isolate_client", ("client",)),
    "split_control": ("split_control", ("groups",)),
    "block_one_way": ("block_one_way", ("src", "dst")),
    "heal_control": ("heal_control", ()),
    "partition_san": ("partition_san", ("initiator", "device")),
    "heal_san": ("heal_san", ()),
    "crash_client": ("crash_client", ("client",)),
    "crash_client_lossy": ("crash_client_lossy", ("client",)),
    "restart_client": ("restart_client", ("client",)),
    "crash_server": ("crash_server", ("server",)),
    "restart_server": ("restart_server", ("server",)),
    "loss_burst": ("loss_burst", ("probability",)),
    "end_loss_burst": ("end_loss_burst", ()),
    "crash_cache": ("crash_cache_node", ("node",)),
    "restart_cache": ("restart_cache_node", ("node",)),
    "flush_cache": ("flush_cache_node", ("node",)),
    # Byzantine possession (repro.fault.adversary): the client itself
    # misbehaves rather than failing.  §6's fencing is the backstop.
    "ignore_lease_expiry": ("ignore_lease_expiry", ("client",)),
    "replay_stale_grant": ("replay_stale_grant", ("client",)),
    "stretch_clock": ("stretch_clock", ("client",)),
    "forge_san_write": ("forge_san_write", ("client",)),
    "suppress_release": ("suppress_release", ("client",)),
}


class FaultInjector:
    """Builds a timed fault schedule against one system and runs it.

    >>> inj = FaultInjector(system)
    >>> inj.at(5.0).isolate_client("c1")
    >>> inj.at(40.0).heal_control()
    >>> inj.start()
    """

    def __init__(self, system: StorageTankSystem):
        self.system = system
        self._steps: List[_Step] = []
        self._pending_time: Optional[float] = None
        self.log: List[Tuple[float, str]] = []

    # -- schedule building (fluent) ----------------------------------------
    def at(self, time: float) -> "FaultInjector":
        """Set the time for the next queued action."""
        if not (time >= 0.0):  # also rejects NaN
            raise ScheduleError(
                f"fault step time must be a non-negative number, got {time!r}")
        self._pending_time = float(time)
        return self

    def _add(self, label: str, action: Callable[[], None]) -> "FaultInjector":
        if self._pending_time is None:
            raise ScheduleError(
                f"no pending time for fault action {label!r}: "
                f"call .at(time) before queueing an action")
        self._steps.append(_Step(self._pending_time, label, action))
        return self

    def apply_step(self, time: float, kind: str,
                   params: Optional[Mapping[str, Any]] = None,
                   ) -> "FaultInjector":
        """Queue one data-described step (see :data:`STEP_KINDS`).

        This is the entry point the randomized schedule generator uses:
        ``apply_step(3.0, "isolate_client", {"client": "c1"})`` is
        exactly ``at(3.0).isolate_client("c1")``.
        """
        entry = STEP_KINDS.get(kind)
        if entry is None:
            raise ScheduleError(
                f"unknown fault step kind {kind!r}; "
                f"known kinds: {sorted(STEP_KINDS)}")
        method_name, required = entry
        given = dict(params or {})
        missing = [p for p in required if p not in given]
        if missing:
            raise ScheduleError(
                f"fault step {kind!r} is missing params {missing}")
        method = getattr(self, method_name)
        self.at(time)
        if kind == "split_control":
            method(*given["groups"])
            return self
        method(**given)
        return self

    def isolate_client(self, client: str) -> "FaultInjector":
        """Symmetric control-network cut around one client (Fig. 2)."""
        sysm = self.system
        return self._add(f"isolate:{client}",
                         lambda: sysm.ctrl_partitions.isolate(client))

    def split_control(self, *groups: Any) -> "FaultInjector":
        """Symmetric control-network split into groups."""
        sysm = self.system
        gs = [list(g) for g in groups]
        return self._add("split", lambda: sysm.ctrl_partitions.split(*gs))

    def block_one_way(self, src: str, dst: str) -> "FaultInjector":
        """Asymmetric control-network failure: src loses its path to dst."""
        sysm = self.system
        return self._add(f"oneway:{src}->{dst}",
                         lambda: sysm.control_net.block(src, dst))

    def heal_control(self) -> "FaultInjector":
        """Remove every control-network partition."""
        sysm = self.system
        return self._add("heal_control", sysm.control_net.heal_all)

    def partition_san(self, initiator: str, device: str) -> "FaultInjector":
        """Cut an initiator's SAN path to a device."""
        sysm = self.system
        return self._add(f"san_cut:{initiator}-{device}",
                         lambda: sysm.san.block_pair(initiator, device))

    def heal_san(self) -> "FaultInjector":
        """Remove every SAN partition."""
        sysm = self.system
        return self._add("heal_san", sysm.san.heal_all)

    def crash_client(self, client: str) -> "FaultInjector":
        """Stop the client's endpoint (volatile cache/locks conceptually
        lost with it; the node object stays for inspection)."""
        sysm = self.system
        return self._add(f"crash:{client}",
                         lambda: sysm.client(client).endpoint.crash())

    def crash_client_lossy(self, client: str) -> "FaultInjector":
        """Hard client failure: endpoint down *and* volatile state
        (page cache, lock table) wiped — acked-but-unflushed writes die
        with the node, which is the paper's crash model."""
        sysm = self.system

        def crash() -> None:
            node = sysm.client(client)
            node.endpoint.crash()
            node.cache.invalidate_all()
            locks = getattr(node, "locks", None)
            if locks is not None:
                locks.drop_all()
        return self._add(f"crash:{client}", crash)

    def restart_client(self, client: str) -> "FaultInjector":
        """Bring a crashed client's endpoint back."""
        sysm = self.system
        return self._add(f"restart:{client}",
                         lambda: sysm.client(client).endpoint.restart())

    def crash_server(self, server: str) -> "FaultInjector":
        """Fail a metadata server (volatile lock state lost, §6)."""
        sysm = self.system
        return self._add(f"crash:{server}",
                         lambda: sysm.server_node(server).crash())

    def restart_server(self, server: str) -> "FaultInjector":
        """Bring a crashed server back (new epoch; reassertion grace)."""
        sysm = self.system
        return self._add(f"restart:{server}",
                         lambda: sysm.server_node(server).restart())

    def loss_burst(self, probability: float) -> "FaultInjector":
        """Raise the control network's datagram loss rate (message-loss
        burst) until :meth:`end_loss_burst` restores the configured
        baseline."""
        if not (0.0 <= probability <= 1.0):
            raise ScheduleError(
                f"loss probability must be in [0, 1], got {probability!r}")
        sysm = self.system

        def raise_loss() -> None:
            sysm.control_net.drop_probability = probability
        return self._add(f"loss_burst:{probability:g}", raise_loss)

    def end_loss_burst(self) -> "FaultInjector":
        """Restore the configured baseline control-network loss rate."""
        sysm = self.system

        def restore() -> None:
            sysm.control_net.drop_probability = \
                sysm.config.network.ctrl_drop_probability
        return self._add("end_loss_burst", restore)

    def crash_cache_node(self, node: str) -> "FaultInjector":
        """Kill a metadata cache node: endpoint down, soft state wiped.
        The crash:{node} label shape matches clients/servers so the
        oracle helpers' crash-window reconstruction applies unchanged."""
        sysm = self.system
        return self._add(f"crash:{node}",
                         lambda: sysm.netcache[node].crash())

    def restart_cache_node(self, node: str) -> "FaultInjector":
        """Bring a crashed cache node back with a cold (empty) store."""
        sysm = self.system
        return self._add(f"restart:{node}",
                         lambda: sysm.netcache[node].restart())

    def flush_cache_node(self, node: str) -> "FaultInjector":
        """Administratively drop every entry a cache node holds."""
        sysm = self.system
        return self._add(f"flush_cache:{node}",
                         lambda: sysm.netcache[node].flush_all())

    # -- Byzantine possession (repro.fault.adversary) -----------------------
    def _possess(self, client: str, kind: str) -> "FaultInjector":
        sysm = self.system

        def act() -> None:
            ByzantineClientAgent.possess(sysm, client, kind)
        return self._add(f"byz_{kind}:{client}", act)

    def ignore_lease_expiry(self, client: str) -> "FaultInjector":
        """Possess a client: it keeps serving/writing after lease lapse
        (§3.2 violated; §6 fencing must contain it)."""
        return self._possess(client, "ignore_lease_expiry")

    def replay_stale_grant(self, client: str) -> "FaultInjector":
        """Possess a client: it periodically reasserts every lock grant
        it ever received, including pre-steal (stale) ones."""
        return self._possess(client, "replay_stale_grant")

    def stretch_clock(self, client: str) -> "FaultInjector":
        """Possess a client: its clock rate drops far below the ε bound
        (T-Lease slow-clock attack on Theorem 3.1)."""
        return self._possess(client, "stretch_clock")

    def forge_san_write(self, client: str) -> "FaultInjector":
        """Possess a client: it issues SAN writes for blocks it holds
        no lock on (fencing/capability check must reject them)."""
        return self._possess(client, "forge_san_write")

    def suppress_release(self, client: str) -> "FaultInjector":
        """Possess a client: it ACKs lock demands but never complies."""
        return self._possess(client, "suppress_release")

    def custom(self, label: str, fn: Callable[[], None]) -> "FaultInjector":
        """Queue an arbitrary action."""
        return self._add(label, fn)

    # -- execution ------------------------------------------------------------
    def start(self) -> Process:
        """Spawn the schedule as a simulation process."""
        steps = sorted(self._steps, key=lambda s: s.time)

        def run() -> Generator[Event, Any, None]:
            sim = self.system.sim
            for step in steps:
                delay = step.time - sim.now
                if delay > 0:
                    yield sim.timeout(delay)
                step.action()
                self.log.append((sim.now, step.label))
                self.system.trace.emit(sim.now, "fault.inject", "injector",
                                       label=step.label)
        return self.system.spawn(run(), "fault-injector")
