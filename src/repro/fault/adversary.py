"""Byzantine client possession (paper §2.1/§6 adversary model).

The lease protocol (§2–§5) is *cooperative*: its safety argument
(Theorem 3.1) assumes clients run the four-phase state machine
honestly.  §6 is the backstop for clients that do not — fencing at the
shared store contains a client that "fails to respect its lease".  The
paper never enumerates the misbehaviors; Chaudhuri's access-control
analysis and T-Lease's clock-attack model (PAPERS.md) do, and this
module turns those adversary classes into schedulable fault steps:

- ``ignore_lease_expiry`` — the client keeps serving and writing after
  its lease lapses instead of quiescing and flushing (§3.2 violated);
- ``replay_stale_grant``  — the client reasserts lock grants it
  remembers from before a steal (stale-capability replay);
- ``stretch_clock``       — the client's clock rate drifts far below
  the ε bound Theorem 3.1 assumes (T-Lease slow-clock attack), so its
  lease outlives the server's τ(1+ε) wait;
- ``forge_san_write``     — the client issues SAN writes for blocks it
  holds no lock on (it remembers device/LBA targets from past dirty
  writes and replays garbage at them);
- ``suppress_release``    — the client ACKs every LOCK_DEMAND but
  never complies (honest-looking liveness attack).

The paper's actual claim — the one the containment oracles check — is
that misbehavior is *contained*, not prevented: honest clients'
consistency invariants hold and the adversary is eventually fenced.

Possession is a wrapper, not a subclass: :func:`possess` takes an
ordinary, already-built client (eager or lazily materialized from the
pool) and perturbs its behavior in place by overriding the documented
extension points (lease callbacks, the admission gate, the lock-table
observers, the LOCK_DEMAND handler, the local clock).  The resulting
:class:`ByzantineClientAgent` still satisfies the ``ClientAgent``
protocol, and possession draws **no** randomness — daemons tick on
fixed local intervals and iterate in sorted order, so adversarial runs
stay bit-deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, Mapping, Optional, Tuple

from repro.locks.modes import LockMode
from repro.net.message import DeliveryError, Message, MsgKind, NackError
from repro.net.san import SanUnreachableError
from repro.sim.events import Event
from repro.storage.disk import FencedIoError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.client.cache import Page
    from repro.client.node import StorageTankClient
    from repro.core.system import StorageTankSystem

#: The Byzantine step vocabulary (mirrored into ``STEP_KINDS``).
BYZANTINE_KINDS: Tuple[str, ...] = (
    "ignore_lease_expiry",
    "replay_stale_grant",
    "stretch_clock",
    "forge_san_write",
    "suppress_release",
)

#: Fixed local-clock tick for the replay daemon (no randomness).
REPLAY_INTERVAL = 3.0
#: Fixed local-clock tick for the forge daemon.
FORGE_INTERVAL = 2.5
#: Slow-clock factor: well past any ε the generator draws (≤ 0.1), so
#: the possessed client's lease measurably outlives the server's wait.
STRETCH_FACTOR = 0.55


def _noop() -> None:
    return None


def _free_admit(server: Optional[str] = None,
                ) -> Generator[Event, Any, None]:
    """Replacement admission gate: never quiesce, never wait (§3.2
    violated — operations run regardless of lease phase)."""
    return
    yield  # pragma: no cover - makes this a generator function


class ByzantineClientAgent:
    """An ordinary client possessed by one or more misbehaviors.

    Conforms to the ``ClientAgent`` protocol by delegation, so anything
    that inspects agents (overhead accounting, experiment harnesses)
    treats a possessed client like any other.
    """

    def __init__(self, system: "StorageTankSystem",
                 client: "StorageTankClient") -> None:
        self.system = system
        self.client = client
        self.kinds: Tuple[str, ...] = ()
        # Attack bookkeeping (read by tests and the E-adv experiment).
        self.replays_sent = 0
        self.replays_refused = 0
        self.forged_writes = 0
        self.forged_denied = 0
        self.demands_suppressed = 0
        self._grant_memory: Dict[int, int] = {}
        self._forge_targets: Dict[int, Dict[Tuple[str, int], None]] = {}

    # -- ClientAgent protocol ------------------------------------------------
    def overhead_snapshot(self) -> Mapping[str, float]:
        """Delegate to the possessed client (protocol conformance)."""
        return self.client.overhead_snapshot()

    # -- possession ----------------------------------------------------------
    @classmethod
    def possess(cls, system: "StorageTankSystem", client_name: str,
                kind: str) -> "ByzantineClientAgent":
        """Install one misbehavior on a client, materializing it first
        if it is a parked flyweight.  Repeat possessions of the same
        client compose on one agent; re-applying a kind is a no-op."""
        if kind not in BYZANTINE_KINDS:
            raise ValueError(f"unknown Byzantine kind {kind!r}; "
                             f"known: {sorted(BYZANTINE_KINDS)}")
        client = system.client(client_name)
        agent = getattr(client, "_byz_agent", None)
        if not isinstance(agent, cls):
            agent = cls(system, client)
            setattr(client, "_byz_agent", agent)
        agent.apply(kind)
        return agent

    def apply(self, kind: str) -> None:
        """Install one misbehavior (idempotent per kind)."""
        if kind in self.kinds:
            return
        installer = getattr(self, f"_apply_{kind}")
        installer()
        self.kinds = self.kinds + (kind,)
        self.system.trace.emit(self.system.sim.now, "byz.possess",
                               self.client.name, behavior=kind)

    # -- the five misbehaviors -----------------------------------------------
    def _apply_ignore_lease_expiry(self) -> None:
        """Keep serving and writing after lapse: the four-phase machine's
        quiesce/flush/expire callbacks are severed and the admission
        gate is replaced by a free pass.  Crucially the client never
        *observes* its own lapse, so it also never attests one — an
        attested-rejoin server keeps it fenced forever (§6)."""
        client = self.client
        for manager in client.leases.values():
            cb = manager.callbacks
            setattr(cb, "on_enter_suspect", _noop)
            setattr(cb, "on_enter_flush", _noop)
            setattr(cb, "on_expired", _noop)
        setattr(client, "_admit", _free_admit)
        # If the lease machinery already quiesced the node, un-gate the
        # operations parked on the resume event.
        client._unquiesce()

    def _apply_replay_stale_grant(self) -> None:
        """Remember every grant ever received and periodically reassert
        the whole set — including grants that a steal has since voided
        (pre-steal capability replay)."""
        client = self.client
        memory = self._grant_memory
        orig_granted = client.locks.note_granted

        def note_granted(obj: int, mode: LockMode) -> None:
            if int(mode) > memory.get(obj, 0):
                memory[obj] = int(mode)
            orig_granted(obj, mode)

        setattr(client.locks, "note_granted", note_granted)
        for obj, mode in client.locks.all_held():
            if int(mode) > memory.get(obj, 0):
                memory[obj] = int(mode)
        self.system.sim.process(self._replay_daemon(),
                                name=f"byz:{client.name}:replay")

    def _apply_stretch_clock(self) -> None:
        """Slow the local clock far past the ε bound (T-Lease attack):
        every locally timed interval — above all the τ lease interval —
        stretches in global time, so the client still believes its lease
        while the server's τ(1+ε) wait has long elapsed.  Offset is
        re-anchored so the local reading is continuous at the switch."""
        clock = self.client.endpoint.clock
        now = self.system.sim.now
        local_now = clock.local_time(now)
        new_rate = clock.rate * STRETCH_FACTOR
        clock.offset = local_now - new_rate * now
        clock.rate = new_rate

    def _apply_forge_san_write(self) -> None:
        """Issue SAN writes for blocks the client holds no lock on: it
        remembers every (device, lba) it ever wrote dirty data to, stops
        forgetting them on voluntary release/downgrade — only the honest
        code forgets — and replays garbage tags at them forever."""
        client = self.client
        targets = self._forge_targets
        orig_write_dirty = client.cache.write_dirty
        orig_released = client.locks.note_released
        orig_downgraded = client.locks.note_downgraded

        def write_dirty(file_id: int, logical_block: int, device: str,
                        lba: int, tag: str) -> "Page":
            targets.setdefault(file_id, {})[(device, lba)] = None
            return orig_write_dirty(file_id, logical_block, device, lba, tag)

        def note_released(obj: int) -> None:
            # A *voluntary* hand-back: an honest-looking adversary keeps
            # replaying only blocks whose locks it lost involuntarily
            # (lease lapse, steal) — the §6 containment case.
            targets.pop(obj, None)
            orig_released(obj)

        def note_downgraded(obj: int, mode: LockMode) -> None:
            targets.pop(obj, None)
            orig_downgraded(obj, mode)

        setattr(client.cache, "write_dirty", write_dirty)
        setattr(client.locks, "note_released", note_released)
        setattr(client.locks, "note_downgraded", note_downgraded)
        self.system.sim.process(self._forge_daemon(),
                                name=f"byz:{client.name}:forge")

    def _apply_suppress_release(self) -> None:
        """ACK every LOCK_DEMAND with the honest-looking reply but never
        run the compliance path (flush + release)."""
        client = self.client

        def on_demand(msg: Message) -> Tuple[str, Dict[str, Any]]:
            self.demands_suppressed += 1
            return ("ack", {"status": "demand_received"})

        client.endpoint.register(MsgKind.LOCK_DEMAND, on_demand)

    # -- attack daemons ------------------------------------------------------
    def _replay_daemon(self) -> Generator[Event, Any, None]:
        client = self.client
        endpoint = client.endpoint
        while True:
            yield endpoint.local_timeout(REPLAY_INTERVAL)
            if not endpoint.alive or not self._grant_memory:
                continue
            for obj in sorted(self._grant_memory):
                mode = self._grant_memory[obj]
                server = client._file_server.get(obj, client.server)
                try:
                    yield from endpoint.request(
                        server, MsgKind.LOCK_REASSERT,
                        {"file_id": obj, "mode": mode})
                    self.replays_sent += 1
                except NackError:
                    self.replays_refused += 1
                except DeliveryError:
                    pass

    def _forge_daemon(self) -> Generator[Event, Any, None]:
        client = self.client
        san = self.system.san
        seq = 0
        while True:
            yield client.endpoint.local_timeout(FORGE_INTERVAL)
            if not client.endpoint.alive or not self._forge_targets:
                continue
            by_device: Dict[str, Dict[int, str]] = {}
            for fid in sorted(self._forge_targets):
                for device, lba in sorted(self._forge_targets[fid]):
                    seq += 1
                    by_device.setdefault(device, {})[lba] = \
                        f"{client.name}:forged{seq}"
            for device in sorted(by_device):
                try:
                    yield from san.write(client.name, device,
                                         by_device[device])
                    self.forged_writes += 1
                except (FencedIoError, SanUnreachableError):
                    self.forged_denied += 1


def possess(system: "StorageTankSystem", client_name: str,
            kind: str) -> ByzantineClientAgent:
    """Module-level convenience for :meth:`ByzantineClientAgent.possess`."""
    return ByzantineClientAgent.possess(system, client_name, kind)
