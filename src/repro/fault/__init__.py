"""Failure injection.

Schedules the failure modes the paper reasons about: control-network
partitions (permanent, transient and asymmetric — §2), SAN partitions,
client crashes (volatile state loss) and slow computers (§6).  All
injections are ordinary simulation processes, so they compose with
workloads and are reproducible from the seed.
"""

from repro.fault.adversary import (
    BYZANTINE_KINDS,
    ByzantineClientAgent,
    possess,
)
from repro.fault.injector import STEP_KINDS, FaultInjector, ScheduleError
from repro.fault.scenarios import (
    fig2_control_partition,
    transient_partition,
    client_crash,
    san_partition,
    server_crash,
)

__all__ = [
    "BYZANTINE_KINDS",
    "ByzantineClientAgent",
    "FaultInjector",
    "STEP_KINDS",
    "ScheduleError",
    "possess",
    "client_crash",
    "fig2_control_partition",
    "san_partition",
    "server_crash",
    "transient_partition",
]
