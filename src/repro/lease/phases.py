"""The client's lease phases (paper Fig. 4)."""

from __future__ import annotations

import enum


class LeasePhase(enum.IntEnum):
    """Where the client stands inside (or past) its lease interval."""

    VALID = 1          # lease valid; full service; renewed by any ACK
    RENEWAL = 2        # no renewal seen; actively send keep-alives
    SUSPECT = 3        # assume isolated: quiesce (no new requests)
    FLUSH = 4          # expected failure: flush dirty data to the SAN
    EXPIRED = 5        # lease dead: cache invalid, locks ceded

    @property
    def serves_new_requests(self) -> bool:
        """Local processes get service only in phases 1-2 (§3.2)."""
        return self in (LeasePhase.VALID, LeasePhase.RENEWAL)

    @property
    def cache_usable(self) -> bool:
        """Cached data may back reads until the lease expires."""
        return self != LeasePhase.EXPIRED


def phase_for_elapsed(elapsed_frac: float, renewal: float, suspect: float,
                      flush: float) -> LeasePhase:
    """Phase as a function of elapsed lease fraction."""
    if elapsed_frac < renewal:
        return LeasePhase.VALID
    if elapsed_frac < suspect:
        return LeasePhase.RENEWAL
    if elapsed_frac < flush:
        return LeasePhase.SUSPECT
    if elapsed_frac < 1.0:
        return LeasePhase.FLUSH
    return LeasePhase.EXPIRED
