"""The client's lease phases (paper Fig. 4) and their transition table.

The phase of a lease is a *derived* quantity (elapsed lease fraction on
the client's own clock), but every announced phase change must follow an
edge of Fig. 4: time only moves the client forward through the interval
(valid → renewal → suspect → flush → expired), and the single backward
edge is a successful renewal returning the client to full service.
:func:`transition` is the one sanctioned way to move a stored phase —
lint rule RPL004 rejects any other assignment to a phase attribute.
"""

from __future__ import annotations

import enum
from typing import Mapping, FrozenSet


class LeasePhase(enum.IntEnum):
    """Where the client stands inside (or past) its lease interval."""

    VALID = 1          # lease valid; full service; renewed by any ACK
    RENEWAL = 2        # no renewal seen; actively send keep-alives
    SUSPECT = 3        # assume isolated: quiesce (no new requests)
    FLUSH = 4          # expected failure: flush dirty data to the SAN
    EXPIRED = 5        # lease dead: cache invalid, locks ceded

    @property
    def serves_new_requests(self) -> bool:
        """Local processes get service only in phases 1-2 (§3.2)."""
        return self in (LeasePhase.VALID, LeasePhase.RENEWAL)

    @property
    def cache_usable(self) -> bool:
        """Cached data may back reads until the lease expires."""
        return self != LeasePhase.EXPIRED


class IllegalPhaseTransition(Exception):
    """An announced phase change with no edge in Fig. 4."""

    def __init__(self, current: LeasePhase, target: LeasePhase) -> None:
        super().__init__(f"illegal lease phase transition "
                         f"{current.name} -> {target.name} (Fig. 4)")
        self.current = current
        self.target = target


#: The *time-driven* edges of Fig. 4: with no renewal, elapsed lease
#: fraction only grows, so the phase can only move deeper into the
#: interval (skipping boundaries a sleeping daemon slept through).
#: Every backward move — and any exit from EXPIRED — is a new lease
#: position and therefore requires a renewal (Fig. 3: the lease runs
#: from the local send time of the freshly acknowledged message).
LEGAL_TRANSITIONS: Mapping[LeasePhase, FrozenSet[LeasePhase]] = {
    LeasePhase.VALID: frozenset({LeasePhase.RENEWAL, LeasePhase.SUSPECT,
                                 LeasePhase.FLUSH, LeasePhase.EXPIRED}),
    LeasePhase.RENEWAL: frozenset({LeasePhase.SUSPECT, LeasePhase.FLUSH,
                                   LeasePhase.EXPIRED}),
    LeasePhase.SUSPECT: frozenset({LeasePhase.FLUSH, LeasePhase.EXPIRED}),
    LeasePhase.FLUSH: frozenset({LeasePhase.EXPIRED}),
    LeasePhase.EXPIRED: frozenset(),
}


def transition(current: LeasePhase, target: LeasePhase, *,
               renewed: bool = False) -> LeasePhase:
    """Move a lease phase along an edge of Fig. 4.

    Self-loops are always legal.  Without a renewal, only the
    time-driven forward edges of :data:`LEGAL_TRANSITIONS` are open;
    ``renewed=True`` (an ACK arrived since the phase was last observed)
    re-anchors the interval and may land the client anywhere in it.
    Raises :class:`IllegalPhaseTransition` otherwise.  All stored-phase
    updates must flow through here (lint rule RPL004).
    """
    if target is current or renewed:
        return target
    if target in LEGAL_TRANSITIONS[current]:
        return target
    raise IllegalPhaseTransition(current, target)


def phase_for_elapsed(elapsed_frac: float, renewal: float, suspect: float,
                      flush: float) -> LeasePhase:
    """Phase as a function of elapsed lease fraction."""
    if elapsed_frac < renewal:
        return LeasePhase.VALID
    if elapsed_frac < suspect:
        return LeasePhase.RENEWAL
    if elapsed_frac < flush:
        return LeasePhase.SUSPECT
    if elapsed_frac < 1.0:
        return LeasePhase.FLUSH
    return LeasePhase.EXPIRED
