"""Lease arithmetic and the Theorem 3.1 ordering argument.

A lease is a contract: the server promises to respect the client's
locks for τ (client-clock) seconds from the moment the client *initiated*
its last ACKed message (t_C1 in Fig. 3 — not the ACK receipt t_C2,
because only t_C1 is known to precede the server's reply t_S2).  The
server, upon deciding a client has failed, waits τ(1+ε) on *its own*
clock from a point no earlier than t_S2; rate synchronization within ε
then guarantees the client's lease has expired before locks are stolen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.sim.clock import LocalClock


@dataclass(frozen=True)
class PhaseBoundaries:
    """Fractions of τ at which the client's lease phases begin (§3.2).

    Phase 1 (valid) occupies ``[0, renewal)``, phase 2 (renewal period)
    ``[renewal, suspect)``, phase 3 (lease suspect / quiesce)
    ``[suspect, flush)`` and phase 4 (expected failure / flush)
    ``[flush, 1)``.
    """

    renewal: float = 0.5
    suspect: float = 0.75
    flush: float = 0.9

    def __post_init__(self) -> None:
        if not (0.0 < self.renewal < self.suspect < self.flush < 1.0):
            raise ValueError(
                f"phase fractions must satisfy 0 < renewal < suspect < flush < 1, "
                f"got {self.renewal}, {self.suspect}, {self.flush}")


@dataclass(frozen=True)
class LeaseContract:
    """The (τ, ε) contract plus phase layout."""

    tau: float = 30.0
    epsilon: float = 0.05
    boundaries: PhaseBoundaries = field(default_factory=PhaseBoundaries)

    def __post_init__(self) -> None:
        if self.tau <= 0:
            raise ValueError(f"tau must be positive, got {self.tau}")
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {self.epsilon}")

    # -- client side ----------------------------------------------------------
    def client_expiry_local(self, lease_start_local: float) -> float:
        """Local time at which a lease obtained at ``lease_start_local`` dies."""
        return lease_start_local + self.tau

    def phase_start_local(self, lease_start_local: float, phase_index: int) -> float:
        """Local start time of phase 1..4 (phase 5 = expiry)."""
        b = self.boundaries
        fracs = {1: 0.0, 2: b.renewal, 3: b.suspect, 4: b.flush, 5: 1.0}
        try:
            return lease_start_local + self.tau * fracs[phase_index]
        except KeyError:
            raise ValueError(f"phase index must be 1..5, got {phase_index}") from None

    # -- server side ------------------------------------------------------------
    def server_wait_local(self) -> float:
        """τ(1+ε): the suspect timer length on the server's clock (§3)."""
        return self.tau * (1.0 + self.epsilon)

    # -- derived -------------------------------------------------------------
    def keepalive_interval_local(self) -> float:
        """Default phase-2 keep-alive spacing: several tries fit in phase 2."""
        width = (self.boundaries.suspect - self.boundaries.renewal) * self.tau
        return max(width / 4.0, 1e-6)

    def worst_case_unavailability(self, detection_local: float = 0.0) -> float:
        """Upper bound on how long stolen data stays locked away: delivery
        failure detection plus the server's τ(1+ε) wait (in server-local
        seconds; the E2 experiment compares this against measurement)."""
        return detection_local + self.server_wait_local()


def verify_theorem_3_1(contract: LeaseContract, client_clock: LocalClock,
                       server_clock: LocalClock, t_send_global: float,
                       t_server_ack_global: float) -> Tuple[bool, float]:
    """Check the Theorem 3.1 ordering for one renewal.

    Given the global instants of the client's message initiation (t_C1)
    and the server's acknowledgment (t_S2 ≥ t_C1), returns
    ``(holds, margin)`` where ``margin`` is global seconds between the
    client-lease expiry and the earliest possible steal; the theorem
    asserts ``margin >= 0`` whenever both clocks respect ε.
    """
    if t_server_ack_global < t_send_global:
        raise ValueError("server ACK cannot precede message initiation")
    # Client: lease runs [t_C1, t_C1 + tau) on its own clock.
    expiry_local = contract.client_expiry_local(client_clock.local_time(t_send_global))
    expiry_global = client_clock.global_time(expiry_local)
    # Server: timer starts no earlier than t_S2, runs tau(1+eps) on its clock.
    steal_local = server_clock.local_time(t_server_ack_global) + contract.server_wait_local()
    steal_global = server_clock.global_time(steal_local)
    margin = steal_global - expiry_global
    # The theorem is exact in real arithmetic; evaluating it in floats
    # needs a magnitude-scaled tolerance for the margin==0 boundary.
    tol = 1e-9 * max(1.0, abs(expiry_global), abs(steal_global))
    return (margin >= -tol, margin)
