"""The client side of the lease protocol: the four-phase state machine.

One :class:`ClientLeaseManager` per (client, server) pair — the paper's
lease is a single contract covering *all* locks held with that server
(§4).  The manager renews on every ACK the client's endpoint receives
(opportunistic renewal, §3.1), runs a daemon that walks the lease
interval's phases (§3.2, Fig. 4) on the *client's own clock*, and
reacts to a NACK by jumping straight to the suspect phase (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Generator, Optional

from repro.lease.contract import LeaseContract
from repro.lease.phases import LeasePhase, transition
from repro.net.control import Endpoint
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.obs import Observability


def _noop() -> None:
    return None


@dataclass
class LeaseCallbacks:
    """Hooks the owning client node provides to the lease daemon.

    All callbacks must be non-blocking: long work (flushing to the SAN,
    sending a keep-alive request) is spawned as a separate process by
    the client node.
    """

    send_keepalive: Callable[[], None] = _noop   # phase 2 + disconnected probing
    on_enter_suspect: Callable[[], None] = _noop  # phase 3: quiesce new requests
    on_enter_flush: Callable[[], None] = _noop    # phase 4: write out dirty data
    on_expired: Callable[[], None] = _noop        # invalidate cache, cede locks
    on_resume_service: Callable[[], None] = _noop  # late renewal pulled us back to phase 1
    on_reconnected: Callable[[], None] = _noop    # probe succeeded after expiry


class ClientLeaseManager:
    """Four-phase lease state machine for one server relationship."""

    def __init__(self, sim: Simulator, endpoint: Endpoint, server: str,
                 contract: LeaseContract,
                 callbacks: Optional[LeaseCallbacks] = None,
                 trace: Optional[TraceRecorder] = None,
                 probe_interval_local: Optional[float] = None,
                 obs: Optional["Observability"] = None) -> None:
        self.sim = sim
        self.endpoint = endpoint
        self.server = server
        self.contract = contract
        self.callbacks = callbacks or LeaseCallbacks()
        self.trace = trace if trace is not None else endpoint.trace
        self.obs = obs
        self._phase_span = None
        self.probe_interval_local = (probe_interval_local
                                     if probe_interval_local is not None
                                     else contract.keepalive_interval_local())

        self._lease_start_local: Optional[float] = None
        self._active = False
        self._ever_active = False
        self._nacked = False
        self._kick: Event = sim.event()
        self._daemon = sim.process(self._run(), name=f"{endpoint.name}:lease:{server}")

        # Phase-occupancy accounting (experiment E5).
        self._last_phase: Optional[LeasePhase] = None
        self._last_phase_since: float = sim.now
        self.phase_time: Dict[LeasePhase, float] = {p: 0.0 for p in LeasePhase}
        self.renewals = 0
        self.expirations = 0
        self.nacks_seen = 0

    # -- public state -----------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether a valid (unexpired) lease is currently held."""
        return self._active

    @property
    def lease_start_local(self) -> Optional[float]:
        """Local initiation time of the message that obtained the lease."""
        return self._lease_start_local

    def expiry_local(self) -> Optional[float]:
        """Local expiry time of the current lease."""
        if self._lease_start_local is None:
            return None
        return self.contract.client_expiry_local(self._lease_start_local)

    def phase(self) -> LeasePhase:
        """Current phase on this client's clock."""
        if not self._active or self._lease_start_local is None:
            return LeasePhase.EXPIRED
        now_local = self.endpoint.local_now()
        elapsed = (now_local - self._lease_start_local) / self.contract.tau
        if self._nacked:
            # §3.3: after a NACK the client skips to phase 3 directly.
            b = self.contract.boundaries
            elapsed = max(elapsed, b.suspect)
        b = self.contract.boundaries
        if elapsed < b.renewal:
            return LeasePhase.VALID
        if elapsed < b.suspect:
            return LeasePhase.RENEWAL
        if elapsed < b.flush:
            return LeasePhase.SUSPECT
        if elapsed < 1.0:
            return LeasePhase.FLUSH
        return LeasePhase.EXPIRED

    @property
    def serves_requests(self) -> bool:
        """Whether new local-process FS requests are admitted now (§3.2)."""
        return self.phase().serves_new_requests

    # -- inputs from the endpoint ------------------------------------------
    def renew(self, t_send_local: float) -> None:
        """An ACK arrived for a message the client initiated at
        ``t_send_local``: the lease now runs ``[t_send_local, +τ)`` (Fig. 3).

        Called from the endpoint's ACK listener for *every* acknowledged
        message — this is what makes renewal free during normal operation.
        """
        if self._nacked:
            return  # §3.3: ignore stale renewals once we know the server NACKed us
        prev_start = self._lease_start_local
        if prev_start is None or t_send_local > prev_start:
            self._lease_start_local = t_send_local
        expiry = self.expiry_local()
        assert expiry is not None
        if expiry <= self.endpoint.local_now():
            return  # too old to validate anything
        self.renewals += 1
        was_active = self._active
        was_ever = self._ever_active
        self._active = True
        self._ever_active = True
        self.trace.emit(self.sim.now, "lease.renewed", self.endpoint.name,
                        server=self.server, start_local=self._lease_start_local)
        if not was_active and was_ever:
            self.trace.emit(self.sim.now, "lease.reconnect", self.endpoint.name,
                            server=self.server)
            self.callbacks.on_reconnected()
        self._wake()

    def on_nack(self) -> None:
        """The server refused to ACK (§3.3): cache is invalid; go suspect."""
        self.nacks_seen += 1
        if not self._active:
            return
        self._nacked = True
        self.trace.emit(self.sim.now, "lease.nack", self.endpoint.name,
                        server=self.server)
        self._wake()

    # -- daemon -------------------------------------------------------------
    def _wake(self) -> None:
        if not self._kick.triggered:
            self._kick.succeed()

    def _note_phase(self, phase: LeasePhase) -> None:
        now = self.sim.now
        if self._last_phase is not None:
            self.phase_time[self._last_phase] += now - self._last_phase_since
        self._last_phase = phase
        self._last_phase_since = now
        if self.obs is not None and self.obs.spans_enabled:
            if self._phase_span is not None:
                self._phase_span.end(now)
            self._phase_span = self.obs.begin_span(
                now, f"lease.phase.{phase.name.lower()}", self.endpoint.name,
                server=self.server)

    def finalize_accounting(self) -> None:
        """Close the open phase interval (call before reading phase_time)."""
        self._note_phase(self._last_phase or self.phase())

    def _run(self) -> Generator[Event, object, None]:
        b = self.contract.boundaries
        announced: Optional[LeasePhase] = None
        renewals_seen = 0
        while True:
            if not self._active:
                if self._last_phase != LeasePhase.EXPIRED:
                    self._note_phase(LeasePhase.EXPIRED)
                # Disconnected (or never connected): probe for a server.
                if self._ever_active:
                    self.callbacks.send_keepalive()
                self._kick = self.sim.event()
                yield self.sim.any_of([
                    self._kick,
                    self.endpoint.local_timeout(self.probe_interval_local)])
                announced = None
                continue

            phase = self.phase()
            if phase != announced:
                # Every announced change must follow an edge of Fig. 4:
                # forward through the interval on time alone, anywhere on
                # a renewal (RPL004's transition table, enforced live).
                transition(announced if announced is not None
                           else LeasePhase.EXPIRED, phase,
                           renewed=self.renewals > renewals_seen)
                self._note_phase(phase)
                self.trace.emit(self.sim.now, "lease.phase", self.endpoint.name,
                                server=self.server, phase=int(phase))
                if phase == LeasePhase.SUSPECT:
                    self.callbacks.on_enter_suspect()
                elif phase == LeasePhase.FLUSH:
                    self.callbacks.on_enter_flush()
                elif phase == LeasePhase.EXPIRED:
                    self._expire()
                    announced = None
                    continue
                elif phase == LeasePhase.VALID and announced in (
                        LeasePhase.SUSPECT, LeasePhase.FLUSH):
                    self.callbacks.on_resume_service()
                announced = phase
            renewals_seen = self.renewals

            assert self._lease_start_local is not None
            now_local = self.endpoint.local_now()
            if self._nacked:
                b_index = {LeasePhase.SUSPECT: 4, LeasePhase.FLUSH: 5}.get(phase, 5)
                next_local = self.contract.phase_start_local(self._lease_start_local, b_index)
            else:
                next_local = self.contract.phase_start_local(
                    self._lease_start_local, int(phase) + 1)
            wait_local = max(next_local - now_local, 0.0)

            if phase == LeasePhase.RENEWAL:
                # Actively try to obtain a new lease with NULL keep-alives.
                self.callbacks.send_keepalive()
                wait_local = min(wait_local, self.contract.keepalive_interval_local())

            self._kick = self.sim.event()
            yield self.sim.any_of([
                self._kick,
                self.endpoint.local_timeout(wait_local + 1e-9)])

    def _expire(self) -> None:
        self._active = False
        self._nacked = False
        self.expirations += 1
        self.trace.emit(self.sim.now, "lease.expire", self.endpoint.name,
                        server=self.server)
        self.callbacks.on_expired()
