"""Coalesced lease bookkeeping for flyweight (parked) clients.

A parked client — registered in the :class:`repro.client.pool.ClientPool`
but not currently materialized as a :class:`~repro.client.node.StorageTankClient`
— may still hold a lease from its last active period.  The full client
tracks that lease with a standing daemon process and per-phase timers;
a million parked clients cannot afford a million of those.

:class:`PooledLeaseService` keeps the *only* lease fact a parked client
needs — "when does my lease certainly lapse" — in flat arrays indexed by
client slot, plus a lazy-deletion heap, and arms exactly **one**
:class:`~repro.sim.timer_pool.TimerPool` entry for the earliest pending
expiry.  When it fires, every due expiry is processed in one sweep and
the per-index callback runs (the pool uses it to invalidate the parked
client's cached-lease record and count the lapse).

Safety framing (paper §3.2): a client may only park once it is *clean*
— no dirty data, no held locks, no in-flight operations — so letting the
lease lapse in absentia requires no flush, no quiesce and no
materialization; the expiry sweep is pure bookkeeping.  This mirrors the
paper's scaling claim: the server is passive and the *client* side of an
idle lease costs O(1) amortized, so system cost tracks transactions,
not population.

Times here are **global** sim seconds: the parked record stores a
conservative (latest-possible) lapse instant computed when the client
parked, so the sweep never needs the client's local clock — which may
not even exist yet for a never-materialized client.
"""

from __future__ import annotations

from array import array
from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

from repro.sim.timer_pool import TimerPool

__all__ = ["PooledLeaseService"]

_INF = float("inf")


class PooledLeaseService:
    """Bulk lease-lapse tracking for flyweight client slots.

    ``ensure_capacity(n)`` sizes the arrays; ``renew(idx, expires_at)``
    records that slot ``idx`` holds a lease until global time
    ``expires_at``; ``lapse(idx)`` drops it immediately (NACK / park of
    an already-expired client).  ``on_expire(idx)`` fires once per held
    lease when its deadline passes, from a single pooled timer.
    """

    def __init__(self, timers: TimerPool,
                 on_expire: Optional[Callable[[int], None]] = None) -> None:
        self.timers = timers
        self.on_expire = on_expire
        #: conservative global lapse instant per slot (+inf = no lease)
        self._expiry = array("d")
        #: 1 while the slot holds an unexpired lease record
        self._held = array("b")
        self._heap: List[Tuple[float, int]] = []
        self._timer_token: Optional[int] = None
        #: earliest deadline the pooled timer entry is registered for
        self._armed_for = _INF
        self.expired = 0
        self.renewals = 0

    # -- capacity ---------------------------------------------------------
    def ensure_capacity(self, n: int) -> None:
        """Grow the per-slot arrays to hold at least ``n`` slots."""
        grow = n - len(self._expiry)
        if grow > 0:
            self._expiry.extend([_INF] * grow)
            self._held.extend([0] * grow)

    def __len__(self) -> int:
        """Number of slots currently holding a lease record."""
        return sum(self._held)

    def holds_lease(self, idx: int) -> bool:
        """True while slot ``idx`` has an unexpired lease record."""
        return idx < len(self._held) and bool(self._held[idx])

    def expiry_of(self, idx: int) -> float:
        """Global lapse instant recorded for slot ``idx`` (+inf if none)."""
        return self._expiry[idx] if idx < len(self._expiry) else _INF

    # -- record keeping ---------------------------------------------------
    def renew(self, idx: int, expires_at: float) -> None:
        """Record that slot ``idx`` holds a lease until ``expires_at``.

        Later calls supersede earlier ones; superseded heap entries are
        discarded lazily during the expiry sweep.
        """
        self.ensure_capacity(idx + 1)
        self._expiry[idx] = expires_at
        self._held[idx] = 1
        self.renewals += 1
        heappush(self._heap, (expires_at, idx))
        if expires_at < self._armed_for:
            self._arm(expires_at)

    def lapse(self, idx: int) -> bool:
        """Drop slot ``idx``'s lease record immediately (e.g. on NACK).

        Returns False if the slot held no lease.  Does *not* run the
        ``on_expire`` callback: the caller is already reacting to the
        lapse.
        """
        if not self.holds_lease(idx):
            return False
        self._held[idx] = 0
        self._expiry[idx] = _INF
        return True

    # -- pooled expiry ----------------------------------------------------
    def _arm(self, when: float) -> None:
        if self._timer_token is not None:
            self.timers.cancel(self._timer_token)
        self._armed_for = when
        self._timer_token = self.timers.at(when, self._sweep)

    def _sweep(self) -> None:
        """Process every due expiry in one pass, then re-arm once."""
        self._timer_token = None
        self._armed_for = _INF
        now = self.timers.sim.now
        heap = self._heap
        expiry = self._expiry
        held = self._held
        cb = self.on_expire
        while heap and heap[0][0] <= now:
            when, idx = heappop(heap)
            # Stale entry: renewed to a later deadline, or already lapsed.
            if not held[idx] or expiry[idx] > when:
                continue
            held[idx] = 0
            expiry[idx] = _INF
            self.expired += 1
            if cb is not None:
                cb(idx)
        if heap:
            self._arm(heap[0][0])
