"""The server side of the lease protocol: the *passive* locking authority.

During normal operation the authority does nothing at all: it keeps no
lease records, runs no timers and sends no messages — the paper's
headline property (§3: "the key feature of the server's protocol is
that it retains no state about client leases").  Experiment E7 verifies
these counters are exactly zero on failure-free runs.

Only a *delivery error* — a server-initiated message that a client
failed to acknowledge after retries — creates state: a suspect entry
with a τ(1+ε) timer on the server's clock.  While the entry exists the
server refuses to ACK the client (a correctness requirement of Theorem
3.1) and instead NACKs valid requests (§3.3, Fig. 5).  When the timer
fires, the client's lease has provably expired and its locks may be
stolen; the entry is then dropped and the authority is stateless again.

Overhead accounting flows through the metrics registry
(``lease.server.cpu_ops`` / ``lease.server.msgs_sent`` /
``lease.server.state_bytes``) via the :class:`SafetyAuthority` base;
when spans are enabled each suspect window becomes a
``lease.steal_resolution`` span from mark-suspect to steal completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

from repro.lease.contract import LeaseContract
from repro.net.control import Endpoint
from repro.net.message import Message
from repro.obs import Observability
from repro.protocols.base import SafetyAuthority
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder

#: Rough in-memory size of one suspect entry, for the E9 memory plots.
SUSPECT_ENTRY_BYTES = 64


@dataclass
class SuspectEntry:
    """Book-keeping for one client being timed out."""

    client: str
    started_local: float
    resolved: Event  # succeeds when the steal has completed


class ServerLeaseAuthority(SafetyAuthority):
    """Lease logic attached to one server endpoint."""

    def __init__(self, sim: Simulator, endpoint: Endpoint,
                 contract: LeaseContract,
                 on_steal: Callable[[str], None],
                 trace: Optional[TraceRecorder] = None,
                 nack_suspects: bool = True,
                 ack_while_expiring: bool = False,
                 obs: Optional[Observability] = None) -> None:
        """``on_steal(client)`` runs when a suspect timer fires; the server
        node uses it to steal locks and construct fences.

        ``nack_suspects=False`` silently ignores suspect clients instead of
        NACKing (the E6 ablation).  ``ack_while_expiring=True`` disables the
        no-ACK correctness rule entirely (the E4 ablation, which *breaks*
        Theorem 3.1 — never enable outside experiments).
        """
        self.contract = contract
        self.nack_suspects = nack_suspects
        self.ack_while_expiring = ack_while_expiring
        self._suspects: Dict[str, SuspectEntry] = {}
        self._steal_spans: Dict[str, object] = {}
        self.peak_state_bytes = 0
        super().__init__(sim, endpoint, on_steal, trace=trace, obs=obs)

    # -- the zero-overhead counters (experiment E7) ----------------------
    def state_bytes(self) -> int:
        """Current lease-state footprint — 0 during normal operation."""
        return len(self._suspects) * SUSPECT_ENTRY_BYTES

    @property
    def suspect_clients(self) -> List[str]:
        """Clients currently being timed out."""
        return list(self._suspects)

    def is_suspect(self, client: str) -> bool:
        """Whether the client is currently being timed out."""
        return client in self._suspects

    # -- inbound gate ---------------------------------------------------------
    def gatekeeper(self, msg: Message) -> Optional[str]:
        """Consulted by the endpoint before executing any request.

        Returns None for non-suspect clients — the normal-operation path
        performs a single dictionary probe and no lease work at all.
        """
        if self.ack_while_expiring:
            return None
        entry = self._suspects.get(msg.src)
        if entry is None:
            return None
        # §3.3: the server can neither ACK (would renew a lease it is
        # expiring) nor execute the transaction.
        self._count_cpu()
        if self.nack_suspects:
            self._count_lease_msg()
            self.trace.emit(self.sim.now, "lease.server_nack", self.endpoint.name,
                            client=msg.src, msg_kind=msg.kind)
            return "nack"
        return "silent"

    # -- failure path ------------------------------------------------------
    def _on_delivery_failure(self, client: str, msg: Message) -> None:
        self.mark_suspect(client)

    def mark_suspect(self, client: str) -> SuspectEntry:
        """Start (idempotently) the τ(1+ε) timer for a client."""
        entry = self._suspects.get(client)
        if entry is not None:
            return entry
        self._count_cpu()
        entry = SuspectEntry(client=client,
                             started_local=self.endpoint.local_now(),
                             resolved=self.sim.event())
        self._suspects[client] = entry
        self.peak_state_bytes = max(self.peak_state_bytes, self.state_bytes())
        self.trace.emit(self.sim.now, "lease.suspect", self.endpoint.name,
                        client=client, wait_local=self.contract.server_wait_local())
        span = self.obs.begin_span(self.sim.now, "lease.steal_resolution",
                                   self.endpoint.name, client=client)
        if span is not None:
            self._steal_spans[client] = span
        self.sim.process(self._timer(entry),
                         name=f"{self.endpoint.name}:lease-timer:{client}")
        return entry

    def resolution(self, client: str) -> Optional[Event]:
        """Event that fires once the client's locks have been stolen."""
        entry = self._suspects.get(client)
        return entry.resolved if entry is not None else None

    def _timer(self, entry: SuspectEntry) -> Generator[Event, None, None]:
        yield self.endpoint.local_timeout(self.contract.server_wait_local())
        self._count_cpu()
        self.total_steals += 1
        self._m_steals.inc()
        self.trace.emit(self.sim.now, "lease.steal", self.endpoint.name,
                        client=entry.client)
        try:
            self.on_steal(entry.client)
        finally:
            self._suspects.pop(entry.client, None)
            entry.resolved.succeed(entry.client)
            span = self._steal_spans.pop(entry.client, None)
            if span is not None:
                span.end(self.sim.now)
