"""The Storage Tank lease-based safety protocol (paper §3) — the core
contribution.

One lease per client/server pair (not per object, §4).  The client
renews *opportunistically* on every ACKed message it initiates (§3.1,
Fig. 3), subdivides its lease interval into four phases (§3.2, Fig. 4)
and, on expiry, has already quiesced, flushed dirty data and invalidated
its cache.  The server is *passive* (§3): it keeps no lease state,
performs no lease computation and sends no lease messages during normal
operation; a delivery error starts a τ(1+ε) timer, requests from the
suspect client are NACKed (§3.3, Fig. 5), and when the timer fires the
client's locks may be safely stolen (Theorem 3.1).
"""

from repro.lease.contract import LeaseContract, PhaseBoundaries, verify_theorem_3_1
from repro.lease.phases import LeasePhase
from repro.lease.client_lease import ClientLeaseManager, LeaseCallbacks
from repro.lease.pooled import PooledLeaseService
from repro.lease.server_lease import ServerLeaseAuthority, SuspectEntry

__all__ = [
    "ClientLeaseManager",
    "LeaseCallbacks",
    "LeaseContract",
    "LeasePhase",
    "PhaseBoundaries",
    "PooledLeaseService",
    "ServerLeaseAuthority",
    "SuspectEntry",
    "verify_theorem_3_1",
]
