"""The cluster coordinator: failure detection and shard-map publication.

A small process on the control network that (1) pings every metadata
server each ``ping_interval``, (2) declares a server dead when a ping
exhausts its retry policy, reassigns the dead server's slots to a
survivor and pushes the bumped map — takeover info first to the new
owner, then to the other servers, then (optionally) to clients — and
(3) on the dead server's return performs *failback*: asks the interim
owners to release the slots (collecting their live lock holdings), then
pushes a map restoring the home assignment, handing the holdings to the
returning server as a graceful adopt.

The coordinator publishes state; it never holds locks and is not on the
data path.  Safety does not depend on its timing: a wrong death verdict
merely triggers a takeover whose (τ + map_lease)(1+ε) wait still
outlasts every lease the (possibly alive but partitioned) old owner
could have renewed before silencing itself — see
:mod:`repro.cluster.takeover`.

Map pushes are best-effort: a partitioned server simply misses updates,
keeps NACKing ``wrong_owner``/``map_stale``, and resynchronises from the
next push (or a client-triggered fetch) once healed.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.cluster.shardmap import ShardMap
from repro.net.control import ControlNetwork, Endpoint, RetryPolicy
from repro.net.message import DeliveryError, Message, MsgKind, NackError
from repro.sim.clock import LocalClock
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle via
    from repro.core.config import ClusterConfig  # repro.core.__init__)


class ClusterCoordinator:
    """Membership monitor and shard-map publisher."""

    def __init__(self, sim: Simulator, net: ControlNetwork, name: str,
                 server_names: Sequence[str], clock: LocalClock,
                 config: "ClusterConfig", trace: TraceRecorder, obs: Any,
                 client_names: Sequence[str] = ()) -> None:
        self.sim = sim
        self.name = name
        self.config = config
        self.trace = trace
        self.obs = obs
        self.server_names: Tuple[str, ...] = tuple(server_names)
        self.client_names: Tuple[str, ...] = tuple(client_names)
        self.endpoint = Endpoint(
            sim, net, name, clock, trace=trace,
            default_policy=RetryPolicy(timeout=config.ping_timeout,
                                       retries=config.ping_retries))
        self.endpoint.obs = obs
        # repro-lint: handles[cluster-coordinator]
        self.endpoint.register(MsgKind.CLUSTER_MAP_FETCH, self._h_fetch)

        self.map = ShardMap.initial(self.server_names, config.n_slots)
        #: Home (epoch-1) slot assignment, the failback target.
        self.home: Dict[str, Tuple[int, ...]] = {
            s: self.map.slots_of(s) for s in self.server_names}
        self.alive: Dict[str, bool] = {s: True for s in self.server_names}
        self.takeovers = 0
        self.failbacks = 0
        obs.registry.gauge(
            "cluster.map_epoch",
            "Current shard-map epoch published by the coordinator",
            labels=("node",),
        ).labels(node=name).set_function(lambda: self.map.epoch)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn one monitor process per server."""
        for srv in self.server_names:
            self.sim.process(self._monitor(srv),
                             name=f"{self.name}:monitor:{srv}")

    def _monitor(self, srv: str) -> Generator[Event, Any, None]:
        """Ping one server forever; drive takeover/failback on edges."""
        while True:
            yield self.endpoint.local_timeout(self.config.ping_interval)
            try:
                yield from self.endpoint.request(srv, MsgKind.CLUSTER_PING,
                                                 {"epoch": self.map.epoch})
            except (DeliveryError, NackError):
                if self.alive[srv]:
                    self.alive[srv] = False
                    self.trace.emit(self.sim.now, "cluster.server_dead",
                                    self.name, server=srv)
                    yield from self._takeover(srv)
                continue
            if not self.alive[srv]:
                self.alive[srv] = True
                self.trace.emit(self.sim.now, "cluster.server_alive",
                                self.name, server=srv)
                yield from self._failback(srv)

    # ------------------------------------------------------------------
    # map evolution
    # ------------------------------------------------------------------
    def _survivor_for(self, dead: str) -> Optional[str]:
        """Next alive server after ``dead`` in ring order."""
        names = self.server_names
        start = names.index(dead)
        for off in range(1, len(names)):
            cand = names[(start + off) % len(names)]
            if self.alive.get(cand):
                return cand
        return None

    def _takeover(self, dead: str) -> Generator[Event, Any, None]:
        """Reassign a dead server's slots to a survivor and publish."""
        slots = self.map.slots_of(dead)
        target = self._survivor_for(dead)
        if not slots or target is None:
            return
        self.map = self.map.reassign(slots, target)
        self.takeovers += 1
        self.trace.emit(self.sim.now, "cluster.takeover", self.name,
                        dead=dead, target=target, slots=len(slots),
                        epoch=self.map.epoch)
        # The new owner learns first (it starts its safety wait from the
        # moment of receipt), then everyone else.
        yield from self._push(target, takeover={"origin": dead,
                                                "slots": list(slots)})
        yield from self._broadcast(exclude=(dead, target))

    def _failback(self, srv: str) -> Generator[Event, Any, None]:
        """Restore a returned server's home slots via graceful handoff."""
        wanted = [s for s in self.home[srv]
                  if self.map.owner_of_slot(s) != srv]
        if not wanted:
            # Nothing moved (e.g. the blip healed before a takeover) —
            # still push the current map so a restarted server unsuspends.
            yield from self._push(srv)
            return
        holdings: List[List[Any]] = []
        clean = True
        by_owner: Dict[str, List[int]] = {}
        for s in wanted:
            by_owner.setdefault(self.map.owner_of_slot(s), []).append(s)
        for owner, owner_slots in by_owner.items():
            try:
                ack = yield from self.endpoint.request(
                    owner, MsgKind.CLUSTER_RELEASE, {"slots": owner_slots})
                holdings.extend(ack.payload.get("holdings") or [])
            except (DeliveryError, NackError):
                # Interim owner unreachable: its grants may still be
                # live, so the returning server must take over the hard
                # way (full wait) instead of adopting.
                clean = False
        self.map = self.map.reassign(wanted, srv)
        self.failbacks += 1
        self.trace.emit(self.sim.now, "cluster.failback", self.name,
                        server=srv, slots=len(wanted), clean=clean,
                        epoch=self.map.epoch)
        if clean:
            yield from self._push(srv, adopt={"holdings": holdings})
        else:
            yield from self._push(srv, takeover={"origin": srv,
                                                 "slots": list(wanted)})
        yield from self._broadcast(exclude=(srv,))

    def move_slots(self, slots: Sequence[int], target: str,
                   ) -> Generator[Event, Any, None]:
        """Administrative rebalancing: graceful handoff of live slots.

        Used by tests to exercise rerouting without killing a server."""
        slots = [s for s in slots if self.map.owner_of_slot(s) != target]
        if not slots:
            return
        holdings: List[List[Any]] = []
        by_owner: Dict[str, List[int]] = {}
        for s in slots:
            by_owner.setdefault(self.map.owner_of_slot(s), []).append(s)
        for owner, owner_slots in by_owner.items():
            try:
                ack = yield from self.endpoint.request(
                    owner, MsgKind.CLUSTER_RELEASE, {"slots": owner_slots})
                holdings.extend(ack.payload.get("holdings") or [])
            except (DeliveryError, NackError):
                pass
        self.map = self.map.reassign(slots, target)
        self.trace.emit(self.sim.now, "cluster.move_slots", self.name,
                        target=target, slots=len(slots), epoch=self.map.epoch)
        yield from self._push(target, adopt={"holdings": holdings})
        yield from self._broadcast(exclude=(target,))

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def _push(self, dst: str, **extra: Any) -> Generator[Event, Any, None]:
        """Push the current map to one node (best-effort)."""
        payload = {"map": self.map.to_payload()}
        payload.update(extra)
        try:
            yield from self.endpoint.request(dst, MsgKind.CLUSTER_MAP_UPDATE,
                                             payload)
        except (DeliveryError, NackError):
            pass

    def _broadcast(self, exclude: Sequence[str] = (),
                   ) -> Generator[Event, Any, None]:
        """Push the current map to remaining servers, then clients."""
        for srv in self.server_names:
            if srv not in exclude:
                yield from self._push(srv)
        if self.config.push_to_clients:
            for cli in self.client_names:
                yield from self._push(cli)

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _h_fetch(self, msg: Message) -> Tuple[str, Dict[str, Any]]:
        """CLUSTER_MAP_FETCH: hand out the current map (client pull)."""
        return ("ack", {"map": self.map.to_payload()})
