"""The shard map: hash slots → owning server, versioned by a map epoch.

Paths hash onto a fixed ring of ``N_SLOTS`` slots; the map assigns each
slot to one metadata server.  Ownership moves slot-wise (takeover,
failback, administrative rebalancing) and every move bumps the *map
epoch* — a monotonically increasing version number that servers quote
in ``WRONG_OWNER`` NACKs and clients compare when deciding whether a
fetched map is news.

``N_SLOTS = 60`` is divisible by every cluster size up to 6, which
makes the *initial* map (``slots[i] = servers[i % n]``) route exactly
like the historical static hash (``servers[_stable_hash(path) % n]``):
``(h % 60) % n == h % n`` whenever ``n`` divides 60.  Existing
multi-server behaviour is therefore unchanged until the first epoch
bump.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Tuple

from repro.sim.rng import _stable_hash

#: Number of hash slots on the ring (divisible by 1..6 cluster sizes).
N_SLOTS = 60


def slot_of_path(path: str) -> int:
    """The ring slot a path hashes onto (stable across runs)."""
    return _stable_hash(path) % N_SLOTS


@dataclass(frozen=True)
class ShardMap:
    """One immutable version of the slot → server assignment."""

    epoch: int
    slots: Tuple[str, ...]

    @classmethod
    def initial(cls, servers: Iterable[str], n_slots: int = N_SLOTS) -> "ShardMap":
        """Epoch-1 map reproducing the static hash routing (see module
        docstring for why ``servers[i % n]`` is routing-compatible)."""
        names = tuple(servers)
        if not names:
            raise ValueError("need at least one server")
        return cls(epoch=1,
                   slots=tuple(names[i % len(names)] for i in range(n_slots)))

    # -- queries ------------------------------------------------------------
    def owner_of_slot(self, slot: int) -> str:
        """The server currently owning a slot."""
        return self.slots[slot % len(self.slots)]

    def owner_of_path(self, path: str) -> str:
        """The server currently owning a path's slot."""
        return self.slots[_stable_hash(path) % len(self.slots)]

    def slots_of(self, server: str) -> Tuple[int, ...]:
        """Every slot assigned to a server."""
        return tuple(i for i, s in enumerate(self.slots) if s == server)

    def owners(self) -> Tuple[str, ...]:
        """The distinct servers holding at least one slot (sorted)."""
        return tuple(sorted(set(self.slots)))

    # -- evolution ----------------------------------------------------------
    def reassign(self, slots: Iterable[int], to: str) -> "ShardMap":
        """A new map (epoch + 1) with the given slots moved to ``to``."""
        new = list(self.slots)
        for s in slots:
            new[s % len(new)] = to
        return ShardMap(epoch=self.epoch + 1, slots=tuple(new))

    # -- wire format ---------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """Message-payload form."""
        return {"epoch": self.epoch, "slots": list(self.slots)}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ShardMap":
        """Rebuild from a message payload."""
        return cls(epoch=int(payload["epoch"]),
                   slots=tuple(payload["slots"]))
