"""Per-server shard role: ownership gating, takeover timing, handoff.

A :class:`ServerShardRole` sits next to one
:class:`~repro.server.node.StorageTankServer` and decides, per inbound
transaction, whether this server currently *owns* the slot the request
addresses.  Requests for foreign slots are NACKed with
``WRONG_OWNER(map_epoch)`` — the same NACK discipline the paper's Fig. 5
uses for lease invalidation, but at the application level: the client's
lease survives, it just refetches the shard map and retries elsewhere.

**Takeover timing.**  When the coordinator reassigns a dead server's
slots here, this server must not grant any lock on them until every
lease the dead server could have granted has provably expired *on the
displaced clients' own clocks*.  The argument is the ordered-events
argument of Theorem 3.1, shifted one hop: any displaced lease was
initiated at some t_C1 that precedes the dead server's last ACK, which
precedes the coordinator's death verdict, which precedes this server's
receipt of the map update.  A client-local wait of τ corresponds to at
most τ·sqrt(1+ε) globally, and this server additionally covers the
*silencing bound* — a still-running (merely partitioned) old owner
stops serving its slots within ``map_lease`` local seconds of losing
coordinator contact, so no lease it renews can outlive
``(τ + map_lease)`` client-local seconds past the verdict.  Waiting
``(τ + map_lease)·(1+ε)`` on this server's own clock therefore outlasts
every displaced lease without reading any remote clock.

After the wait a short **reassertion grace window** opens: displaced
clients (which were *pushed* the new map at detection time and whose
reasserts queued here during the wait) reclaim their locks first;
fresh acquisitions defer to the end of the window.  The window can be
much shorter than the post-restart recovery grace because discovery is
push-based — restart recovery must wait out an idle client's next
keep-alive (0.5τ), takeover only the push propagation delay.

**Failback** is a *graceful* handoff: the current owner exports its
live holdings (an ownership transfer, not a release — no history event
is recorded, so the audit's open-interval reconstruction stays
conservative), the coordinator forwards them, and the returning server
imports them as ordinary grants.  No wait is needed: lock state moved
with the slots, so there is no uncertainty for time to resolve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from repro.cluster.shardmap import ShardMap, slot_of_path
from repro.locks.modes import LockMode
from repro.net.message import Message, MsgKind
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metadata.store import MetadataStore
    from repro.server.node import StorageTankServer

#: Transaction kinds that create or extend a client's hold on an object
#: and are therefore additionally refused while the map lease is stale.
_GRANTING_KINDS = frozenset({
    MsgKind.OPEN, MsgKind.CREATE, MsgKind.UNLINK,
    MsgKind.LOCK_ACQUIRE, MsgKind.RANGE_ACQUIRE,
})


class SlotOwnershipError(Exception):
    """Raised inside a deferred grant whose slot moved away mid-wait."""


@dataclass
class TakeoverWindow:
    """One in-progress takeover: the τ(1+ε)-style wait plus grace."""

    slots: Set[int]
    origin: str
    wait_until_local: float
    grace_until_local: float


class ServerShardRole:
    """Cluster-mode behaviour of one metadata server."""

    def __init__(self, server: "StorageTankServer", shard_map: ShardMap,
                 grace: float, map_lease: float) -> None:
        self.server = server
        self.initial_map = shard_map
        self.map = shard_map
        self.grace = grace
        self.map_lease = map_lease
        self.owned: Set[int] = set(shard_map.slots_of(server.name))
        self.home: Set[int] = set(self.owned)
        # Filled by build_system: every server's (replicated, surviving)
        # private metadata store, keyed by server name, plus the build
        # order used to decode ``file_id // 1_000_000_000`` origins.
        self.peer_stores: Dict[str, "MetadataStore"] = {}
        self.order: Tuple[str, ...] = ()
        self.fid_slot: Dict[int, int] = {}
        self.windows: List[TakeoverWindow] = []
        self.takeovers = 0
        self.wrong_owner_nacks = 0
        self._suspended = False
        self._last_coord_contact_local = server.local_now()
        self._takeover_span = None
        obs = server.obs
        obs.registry.gauge(
            "cluster.wrong_owner_nacks",
            "Requests refused for slots this server does not own",
            labels=("node",),
        ).labels(node=server.name).set_function(lambda: self.wrong_owner_nacks)

    # ------------------------------------------------------------------
    # local time / map-lease staleness
    # ------------------------------------------------------------------
    def _local_now(self) -> float:
        return self.server.local_now()

    def note_coordinator_contact(self) -> None:
        """Refresh the map lease (called on every coordinator ping)."""
        self._last_coord_contact_local = self._local_now()

    def map_is_stale(self) -> bool:
        """Whether coordinator contact has lapsed past the map lease.

        A server whose map lease lapsed may have been declared dead and
        must silence itself: the takeover wait only covers leases this
        server could renew up to ``map_lease`` after losing contact.
        """
        return (self._local_now() - self._last_coord_contact_local
                > self.map_lease)

    # ------------------------------------------------------------------
    # ownership gate
    # ------------------------------------------------------------------
    def _slot_of_message(self, msg: Message) -> Optional[int]:
        payload = msg.payload
        if "path" in payload:
            return slot_of_path(payload["path"])
        if "file_id" in payload:
            return self.fid_slot.get(int(payload["file_id"]))
        return None

    def _wrong_owner(self) -> Tuple[str, Dict[str, Any]]:
        self.wrong_owner_nacks += 1
        # Deliberately NOT a ``__lease_nack__``: a routing refusal is an
        # application outcome, the client's lease must survive it.
        return ("nack", {"error": "wrong_owner", "map_epoch": self.map.epoch})

    def _stale(self) -> Tuple[str, Dict[str, Any]]:
        return ("nack", {"error": "map_stale", "map_epoch": self.map.epoch})

    def gate(self, msg: Message) -> Optional[Tuple[str, Dict[str, Any]]]:
        """Pre-execution ownership check; None admits the request."""
        if msg.kind == MsgKind.KEEPALIVE:
            # A silenced server must also stop renewing leases, or its
            # clients' locks could outlive the takeover wait.
            if self._suspended or self.map_is_stale():
                return self._stale()
            return None
        slot = self._slot_of_message(msg)
        if slot is None:
            fid = msg.payload.get("file_id")
            if fid is not None and not self._is_local_origin(int(fid)):
                # Unknown foreign file id: refuse rather than serve a
                # slot we cannot prove we own (the owner will know it).
                return self._wrong_owner()
            return None
        if self._suspended or slot not in self.owned:
            return self._wrong_owner()
        if self.map_is_stale() and msg.kind in _GRANTING_KINDS:
            return self._stale()
        return None

    def _is_local_origin(self, fid: int) -> bool:
        idx = fid // 1_000_000_000
        return (idx < len(self.order) and self.order[idx] == self.server.name)

    def owns_obj(self, obj: int) -> bool:
        """Whether this server currently owns the object's slot."""
        if self._suspended:
            return False
        slot = self.fid_slot.get(obj)
        if slot is None:
            return self._is_local_origin(obj)
        return slot in self.owned

    # ------------------------------------------------------------------
    # metadata routing (which private store serves a path/file)
    # ------------------------------------------------------------------
    def store_for_path(self, path: str) -> "MetadataStore":
        """The private store holding a path's metadata.

        Invariant: a path's metadata always lives in its *home* owner's
        store (the epoch-1 assignment), whoever currently serves the
        slot — that store is the replicated private storage of §6 that
        survives the home owner's death and that a takeover server
        reads and writes on its behalf.
        """
        origin = self.initial_map.owner_of_path(path)
        return self.peer_stores.get(origin, self.server.metadata)

    def store_for_file(self, fid: int) -> "MetadataStore":
        """The private store holding a file id (decoded from its id base)."""
        idx = fid // 1_000_000_000
        if 0 <= idx < len(self.order):
            return self.peer_stores.get(self.order[idx], self.server.metadata)
        return self.server.metadata

    def note_create(self, fid: int, path: str) -> None:
        """Record a fresh file's slot for fid-routed ownership checks."""
        self.fid_slot[fid] = slot_of_path(path)

    def _reindex(self) -> None:
        """Rebuild the fid → slot index from every (shared) store.

        Slot placement is a pure function of the path, and paths live on
        replicated storage — so knowing every fid's slot is free in the
        model and keeps fid-routed gating exact across handoffs."""
        index: Dict[int, int] = {}
        for store in self.peer_stores.values():
            for path, fid in store.namespace._entries.items():
                index[fid] = slot_of_path(path)
        self.fid_slot = index

    def list_entries(self, prefix: str) -> List[str]:
        """Immediate children under a prefix, restricted to owned slots.

        Mirrors :meth:`Directory.listdir` but filters at the *file*
        level so a fanned-out client readdir merges to exactly the
        cluster-wide namespace, even while slots are mid-handoff.
        """
        from repro.metadata.directory import _normalize
        norm = _normalize(prefix)
        base = norm if norm.endswith("/") else norm + "/"
        seen: Set[str] = set()
        for store in self.peer_stores.values():
            for path in store.namespace._entries:
                if not path.startswith(base):
                    continue
                if slot_of_path(path) not in self.owned:
                    continue
                rest = path[len(base):]
                seen.add(base + rest.split("/")[0])
        return sorted(seen)

    # ------------------------------------------------------------------
    # map updates / takeover / handoff
    # ------------------------------------------------------------------
    def on_restart(self) -> None:
        """After a crash-restart the map is unknown: serve nothing until
        the coordinator's next map update arrives (clients are NACKed
        ``wrong_owner`` and re-route to the current owners meanwhile)."""
        self._suspended = True

    def h_ping(self, msg: Message) -> Tuple[str, Dict[str, Any]]:
        """Coordinator liveness ping (also renews the map lease)."""
        self.note_coordinator_contact()
        return ("ack", {"epoch": self.map.epoch})

    def h_map_update(self, msg: Message) -> Tuple[str, Dict[str, Any]]:
        """Install a pushed shard map (with optional takeover/adopt)."""
        new_map = ShardMap.from_payload(msg.payload["map"])
        self.note_coordinator_contact()
        if new_map.epoch <= self.map.epoch and not self._suspended:
            return ("ack", {"epoch": self.map.epoch})
        self.map = new_map
        self._suspended = False
        self.owned = set(new_map.slots_of(self.server.name))
        self._reindex()
        takeover = msg.payload.get("takeover")
        if takeover is not None:
            self._begin_takeover(takeover["origin"],
                                 set(int(s) for s in takeover["slots"]))
        adopt = msg.payload.get("adopt")
        if adopt is not None:
            self._adopt(adopt.get("holdings") or [])
        self.server.trace.emit(self.server.sim.now, "cluster.map_update",
                               self.server.name, epoch=new_map.epoch,
                               owned=len(self.owned))
        return ("ack", {"epoch": new_map.epoch})

    def h_release(self, msg: Message) -> Tuple[str, Dict[str, Any]]:
        """Coordinator-ordered slot release (failback / rebalancing).

        Stops serving the slots immediately and exports the live lock
        holdings on their files so the coordinator can forward them to
        the next owner — a graceful ownership transfer."""
        slots = set(int(s) for s in msg.payload["slots"])
        self.owned -= slots
        for win in self.windows:
            win.slots -= slots
        fids = [fid for fid, s in self.fid_slot.items() if s in slots]
        holdings = [[obj, client, int(mode)]
                    for obj, client, mode
                    in self.server.locks.export_holdings(fids)]
        self.server.trace.emit(self.server.sim.now, "cluster.release",
                               self.server.name, slots=len(slots),
                               holdings=len(holdings))
        return ("ack", {"holdings": holdings})

    def _begin_takeover(self, origin: str, slots: Set[int]) -> None:
        """Acquire a dead server's slots: open the wait + grace window."""
        wait_local = (self.server.contract.tau + self.map_lease) \
            * (1.0 + self.server.contract.epsilon)
        now_l = self._local_now()
        win = TakeoverWindow(slots=set(slots), origin=origin,
                             wait_until_local=now_l + wait_local,
                             grace_until_local=now_l + wait_local + self.grace)
        self.windows.append(win)
        self.takeovers += 1
        self.server.trace.emit(self.server.sim.now, "cluster.takeover_begin",
                               self.server.name, origin=origin,
                               slots=len(slots), wait_local=wait_local,
                               grace=self.grace)
        obs = self.server.obs
        if obs.spans_enabled:
            span = obs.begin_span(self.server.sim.now, "cluster.takeover",
                                  self.server.name, origin=origin,
                                  slots=len(slots))
            self._takeover_span = span

            def close() -> Generator[Event, Any, None]:
                yield self.server.endpoint.local_timeout(
                    wait_local + self.grace)
                if self._takeover_span is span:
                    span.end(self.server.sim.now)
                    self._takeover_span = None

            self.server.sim.process(
                close(), name=f"{self.server.name}:takeover-span")

    def _adopt(self, holdings: Sequence[Sequence[Any]]) -> None:
        """Install holdings handed over gracefully (failback/rebalance)."""
        entries = [(int(obj), str(client), LockMode(int(mode)))
                   for obj, client, mode in holdings]
        self.server.locks.import_holdings(entries)
        self.server.trace.emit(self.server.sim.now, "cluster.adopt",
                               self.server.name, holdings=len(entries))

    # ------------------------------------------------------------------
    # grant deferral during takeover
    # ------------------------------------------------------------------
    def _active_window(self, obj: int) -> Optional[TakeoverWindow]:
        slot = self.fid_slot.get(obj)
        now_l = self._local_now()
        self.windows = [w for w in self.windows
                        if now_l < w.grace_until_local and w.slots]
        if slot is None:
            return None
        for win in self.windows:
            if slot in win.slots:
                return win
        return None

    def _waiter_until(self, until_local: float,
                      ) -> Generator[Event, Any, None]:
        remaining = until_local - self._local_now()
        yield self.server.endpoint.local_timeout(max(remaining, 0.0))

    def defer_fresh(self, obj: int) -> Optional[Generator[Event, Any, None]]:
        """Defer a fresh acquisition to the end of the grace window."""
        win = self._active_window(obj)
        if win is None:
            return None
        return self._waiter_until(win.grace_until_local)

    def defer_reassert(self, obj: int) -> Optional[Generator[Event, Any, None]]:
        """Defer a displaced client's reassert to the end of the wait.

        Granting earlier would be unsafe: the reasserter's *new* claim
        could coexist with a different displaced client's still-valid
        lease on a conflicting mode.  The request parks as a deferred
        transaction (pending ticket), and the client's periodic re-polls
        keep its new lease with this server renewed through the wait.
        """
        win = self._active_window(obj)
        if win is None or self._local_now() >= win.wait_until_local:
            return None
        return self._waiter_until(win.wait_until_local)
