"""Cluster membership and shard takeover for multi-server installations.

Turns the static hash-sharded namespace (one server per
``_stable_hash(path) % n`` bucket) into a dynamic, failure-tolerant
metadata cluster:

- :mod:`repro.cluster.shardmap` — the slot → owning-server map with a
  monotonically increasing *map epoch*;
- :mod:`repro.cluster.coordinator` — a small coordinator process on the
  control network that detects server death, reassigns slots and
  publishes map updates;
- :mod:`repro.cluster.takeover` — the per-server shard role: ownership
  gating (``WRONG_OWNER`` NACKs), the τ(1+ε) takeover wait that reuses
  the lock-stealing timing argument of Theorem 3.1, the reassertion
  grace window, and the graceful slot handoff used for failback.

See DESIGN.md §cluster for the safety argument.
"""

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.shardmap import N_SLOTS, ShardMap, slot_of_path
from repro.cluster.takeover import ServerShardRole

__all__ = [
    "ClusterCoordinator",
    "N_SLOTS",
    "ServerShardRole",
    "ShardMap",
    "slot_of_path",
]
