"""In-network metadata cache tier (per-rack / middlebox soft state).

Fletch-style metadata caching on the control network: cache nodes sit
between clients and metadata servers, serve read-path metadata RPCs
(lookup/getattr/readdir) from soft state, and forward misses upstream.
Coherence rides the paper's lease protocol — see
:mod:`repro.netcache.node` for the full safety argument.
"""

from repro.netcache.node import (CACHEABLE_KINDS, MetadataCacheNode,
                                 install_cache_router)

__all__ = ["CACHEABLE_KINDS", "MetadataCacheNode", "install_cache_router"]
