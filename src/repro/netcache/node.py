"""Lease-coherent in-network metadata cache nodes.

A :class:`MetadataCacheNode` is a simulated per-rack middlebox on the
control network.  The route-through-cache attachment
(:meth:`repro.net.control.ControlNetwork.set_cache_router`) delivers a
client's cacheable read-path requests (lookup / getattr-by-path /
readdir) to its assigned cache node *instead of* the addressed server;
``msg.dst`` is left untouched, so the cache reads it as the upstream to
forward misses to, and the sender's retries reach the server directly
whenever the cache is dead (crash degrades to forwarding, never to
wrong answers).

Why a hit is never stale (the coherence argument, DESIGN.md §15):

- Every entry is *lease-scoped*: the cache holds an ordinary
  four-phase client lease with each upstream server (renewed
  opportunistically by forwarded traffic and by keep-alives), an entry
  is only installed and only served while the covering lease is
  usable, and lease expiry/NACK flushes the server's entries.  A server
  that cannot reach this cache therefore only has to perform the
  paper's τ(1+ε) suspect wait (Theorem 3.1) to know the entries died.
- Every mutation at the server is *invalidate-before-apply*: the
  server claims a barrier, pushes ``CACHE_INVALIDATE`` to every cache
  and waits for the ACKs (or for lease resolution on delivery
  failure), and only then applies the mutation.  A hit can thus never
  observe a value the server has already replaced.
- Install races are closed by three guards: a reply executed while any
  mutation was pending at the server is stamped uninstallable
  (``__mseq__ = -1``); a reply that executed before a mutation but
  arrives after its invalidation carries a watermark below the
  barrier floor the invalidation raised; and a reply that predates a
  flush (crash, lease lapse, epoch change, WRONG_OWNER) fails the
  per-server generation check snapshotted when the miss was forwarded.

Everything here is crash-safe soft state: ``crash()`` drops the entry
store; correctness never depends on an entry being present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Dict, FrozenSet, Generator,
                    List, Mapping, Optional, Set, Tuple)

from repro.lease.client_lease import ClientLeaseManager, LeaseCallbacks
from repro.lease.contract import LeaseContract
from repro.net.control import (ControlNetwork, Endpoint, HandlerResult,
                               RetryPolicy)
from repro.net.message import DeliveryError, Message, MsgKind, NackError
from repro.sim.clock import LocalClock
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.rng import _stable_hash
from repro.sim.timer_pool import TimerPool
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.core.config import NetCacheConfig
    from repro.obs import Observability
    from repro.obs.registry import Metric

__all__ = ["CACHEABLE_KINDS", "MetadataCacheNode", "install_cache_router"]

#: Read-path kinds the tier intercepts; everything else goes direct.
CACHEABLE_KINDS: FrozenSet[str] = frozenset(
    {MsgKind.LOOKUP, MsgKind.GETATTR, MsgKind.READDIR})

#: (entry kind tag, upstream server, path)
CacheKey = Tuple[str, str, str]


@dataclass
class _Entry:
    """One cached reply: the payload plus its coherence pedigree."""

    __slots__ = ("payload", "server", "fingerprint", "mseq", "learned_at",
                 "file_id")

    payload: Dict[str, Any]
    server: str
    fingerprint: Any
    mseq: int
    learned_at: float        # global sim time of install
    file_id: Optional[int]


class MetadataCacheNode:
    """Soft-state metadata cache for one rack's clients."""

    def __init__(self, sim: Simulator, net: ControlNetwork, name: str,
                 upstreams: Tuple[str, ...], clock: LocalClock,
                 contract: LeaseContract, config: "NetCacheConfig",
                 trace: Optional[TraceRecorder] = None,
                 obs: Optional["Observability"] = None) -> None:
        self.sim = sim
        self.name = name
        self.upstreams = upstreams
        self.contract = contract
        self.config = config
        self.obs = obs
        self.endpoint = Endpoint(
            sim, net, name, clock, trace=trace,
            default_policy=RetryPolicy(timeout=config.rpc_timeout,
                                       retries=config.rpc_retries))
        self.endpoint.obs = obs
        self.trace = self.endpoint.trace

        self._entries: Dict[CacheKey, _Entry] = {}
        self._by_server: Dict[str, Set[CacheKey]] = {u: set() for u in upstreams}
        self._by_fid: Dict[int, Set[CacheKey]] = {}
        #: per-server barrier floor raised by CACHE_INVALIDATE
        self._floor: Dict[str, int] = {}
        #: per-server flush generation; bumped by every flush so replies
        #: forwarded before the flush can never install after it
        self._gen: Dict[str, int] = {}
        #: global invalidation generation; any CACHE_INVALIDATE receipt
        #: bumps it, fencing installs of replies that raced the round
        #: (a cluster peer's invalidation must kill a stale reply from
        #: the shard's *previous* owner, whose per-server floor it
        #: cannot raise)
        self._inval_gen = 0
        self._epochs: Dict[str, int] = {}

        self.hits = 0
        self.misses = 0
        self.installs = 0
        self.installs_rejected = 0
        self.invalidations = 0
        self.entries_dropped = 0
        self.flushes = 0
        self.sweeps = 0
        self.keepalives_sent = 0

        #: one ordinary four-phase client lease per upstream server —
        #: the cache is just another lease-holding tenant of §3
        self.leases: Dict[str, ClientLeaseManager] = {}
        for srv in upstreams:
            callbacks = LeaseCallbacks(
                send_keepalive=self._keepalive_sender(srv),
                on_expired=self._expiry_flusher(srv))
            self.leases[srv] = ClientLeaseManager(
                sim, self.endpoint, srv, contract, callbacks=callbacks,
                trace=trace, obs=obs)
        self.endpoint.ack_listeners.append(self._on_ack)
        self.endpoint.result_listeners.append(self._on_ack)
        self.endpoint.nack_listeners.append(self._on_nack)

        for kind in (MsgKind.LOOKUP, MsgKind.GETATTR, MsgKind.READDIR):
            self.endpoint.register(kind, self._h_read)
        self.endpoint.register(MsgKind.CACHE_INVALIDATE, self._h_invalidate)

        #: pooled lease-lapse sweep: all periodic eviction shares one
        #: armed kernel timeout (the PR 6 TimerPool machinery)
        self.timers = TimerPool(sim, name=f"{name}:timers")
        self._stale_hist: Optional["Metric"] = None
        if obs is not None:
            self._bind_obs(obs)
        self._arm_sweep()

    # -- observability -----------------------------------------------------
    def _bind_obs(self, obs: "Observability") -> None:
        reg = obs.registry
        node = self.name
        reg.gauge("netcache.hits", "Cache hits served from soft state",
                  labels=("node",)).labels(node=node).set_function(
                      lambda: self.hits)
        reg.gauge("netcache.misses", "Misses forwarded upstream",
                  labels=("node",)).labels(node=node).set_function(
                      lambda: self.misses)
        reg.gauge("netcache.invalidations", "CACHE_INVALIDATE rounds seen",
                  labels=("node",)).labels(node=node).set_function(
                      lambda: self.invalidations)
        reg.gauge("netcache.flushes", "Whole-server entry flushes",
                  labels=("node",)).labels(node=node).set_function(
                      lambda: self.flushes)
        reg.gauge("netcache.entries", "Live entries in the store",
                  labels=("node",)).labels(node=node).set_function(
                      lambda: len(self._entries))
        self._stale_hist = reg.histogram(
            "netcache.staleness_window_s",
            "Entry age at invalidation-driven drop (simulated s)",
            labels=("node",))

    # -- lease plumbing ----------------------------------------------------
    def _keepalive_sender(self, server: str) -> Callable[[], None]:
        def send() -> None:
            if not self.endpoint.alive:
                return
            self.keepalives_sent += 1
            self.sim.process(self._keepalive(server),
                             name=f"{self.name}:ka:{server}")
        return send

    def _keepalive(self, server: str) -> Generator[Event, Any, None]:
        try:
            yield from self.endpoint.request(server, MsgKind.KEEPALIVE, {})
        except (DeliveryError, NackError):
            pass

    def _expiry_flusher(self, server: str) -> Callable[[], None]:
        def flush() -> None:
            # Attest the lapse (see client._on_lease_expired): the bumped
            # generation on subsequent RPCs is what lets a fencing server
            # trust this node again after it went dark.
            self.endpoint.lapse_gen += 1
            self.flush_server(server, "lease-expired")
        return flush

    def _on_ack(self, msg: Message, renewal_time: float) -> None:
        lease = self.leases.get(msg.src)
        if lease is not None:
            lease.renew(renewal_time)
        epoch = msg.payload.get("__epoch__")
        if epoch is not None:
            known = self._epochs.get(msg.src)
            self._epochs[msg.src] = int(epoch)
            if known is not None and int(epoch) != known:
                # Upstream restarted (or the shard map rolled): anything
                # learned under the old epoch is untrustworthy.
                self.flush_server(msg.src, "epoch-change")

    def _on_nack(self, msg: Message) -> None:
        if not msg.payload.get("__lease_nack__"):
            return
        lease = self.leases.get(msg.src)
        if lease is not None:
            lease.on_nack()
        # §3.3: a lease NACK means we may have missed invalidations.
        self.flush_server(msg.src, "lease-nack")

    # -- request handling --------------------------------------------------
    def _key_for(self, msg: Message) -> Optional[CacheKey]:
        payload = msg.payload
        kind = msg.kind
        if kind == MsgKind.LOOKUP:
            path = payload.get("path")
            return ("lookup", msg.dst, path) if isinstance(path, str) else None
        if kind == MsgKind.GETATTR:
            # Only path-addressed getattr is cacheable; by-file-id
            # requests forward uncached (invalidation names paths).
            path = payload.get("path")
            return ("attrs", msg.dst, path) if isinstance(path, str) else None
        if kind == MsgKind.READDIR:
            path = payload.get("path", "/")
            return ("readdir", msg.dst, path) if isinstance(path, str) else None
        return None

    def _usable(self, entry: _Entry) -> bool:
        lease = self.leases.get(entry.server)
        if lease is None or not lease.active or not lease.phase().cache_usable:
            return False
        ttl = self.config.entry_ttl
        if ttl > 0.0:
            age = self.sim.now - entry.learned_at
            if age > self.endpoint.clock.to_global_interval(ttl):
                return False
        return True

    def _h_read(self, msg: Message) -> Any:
        key = self._key_for(msg)
        if key is not None:
            entry = self._entries.get(key)
            if entry is not None and self._usable(entry):
                self.hits += 1
                trace = self.trace
                if not trace._noop:
                    trace.emit(self.sim.now, "netcache.hit", self.name,
                               key_kind=key[0], server=key[1], path=key[2],
                               fingerprint=entry.fingerprint)
                return ("ack", dict(entry.payload))
        return self._miss(msg, key)

    def _miss(self, msg: Message,
              key: Optional[CacheKey]) -> Generator[Event, Any, HandlerResult]:
        upstream = msg.dst
        self.misses += 1
        trace = self.trace
        if not trace._noop:
            trace.emit(self.sim.now, "netcache.miss", self.name,
                       msg_kind=msg.kind, server=upstream, client=msg.src)
        gen0 = self._gen.get(upstream, 0)
        inval0 = self._inval_gen
        forward = dict(msg.payload)
        # The client's lapse attestation must not be forwarded under this
        # node's name: the server tracks generations per *sender*, and
        # our own endpoint re-stamps our own generation on the way out.
        forward.pop("__lapse_gen__", None)
        try:
            reply = yield from self.endpoint.request(upstream, msg.kind,
                                                     forward)
        except NackError as exc:
            payload = dict(exc.nack.payload)
            error = str(payload.get("error", ""))
            if "wrong_owner" in error or "map_stale" in error:
                # Shard-map epoch change: this server no longer owns the
                # shard, so everything learned from it for it is suspect.
                self.flush_server(upstream, "wrong-owner")
            payload.pop("__lease_nack__", None)
            payload.pop("__mseq__", None)
            payload.pop("__epoch__", None)
            return ("nack", payload)
        except DeliveryError:
            # The client's own retries will reach the server directly
            # once the router sees this node dead; an alive-but-cut-off
            # cache reports the failure as an application-level error.
            return ("nack", {"error": "upstream_unreachable",
                             "server": upstream})
        out = dict(reply.payload)
        raw_mseq = out.pop("__mseq__", 0)
        mseq = int(raw_mseq) if raw_mseq is not None else 0
        out.pop("__epoch__", None)
        if key is not None:
            self._maybe_install(key, msg.kind, out, upstream, mseq, gen0,
                                inval0)
        return ("ack", out)

    def _maybe_install(self, key: CacheKey, kind: str,
                       payload: Mapping[str, Any], server: str, mseq: int,
                       gen0: int, inval0: int) -> None:
        if not self.endpoint.alive:
            return
        if mseq < 0:
            # Executed while a mutation was mid-barrier at the server.
            self.installs_rejected += 1
            return
        if mseq < self._floor.get(server, 0):
            # Executed before a mutation whose invalidation already
            # passed through here.
            self.installs_rejected += 1
            return
        if gen0 != self._gen.get(server, 0):
            # A flush (crash/lease lapse/epoch change) happened while
            # this reply was in flight.
            self.installs_rejected += 1
            return
        if inval0 != self._inval_gen:
            # *Some* invalidation round landed while this reply was in
            # flight — possibly from a different server that now owns
            # the shard.  Per-server floors cannot see that; refuse.
            self.installs_rejected += 1
            return
        lease = self.leases.get(server)
        if lease is None or not lease.active or not lease.phase().cache_usable:
            return  # nothing to scope the entry's lifetime to
        file_id, fingerprint = self._fingerprint(kind, payload)
        old = self._entries.get(key)
        if old is not None:
            self._drop_keys([key], "replace", count=False)
        entry = _Entry(payload=dict(payload), server=server,
                       fingerprint=fingerprint, mseq=mseq,
                       learned_at=self.sim.now, file_id=file_id)
        self._entries[key] = entry
        self._by_server.setdefault(server, set()).add(key)
        if file_id is not None:
            self._by_fid.setdefault(file_id, set()).add(key)
        self.installs += 1

    @staticmethod
    def _fingerprint(kind: str,
                     payload: Mapping[str, Any]) -> Tuple[Optional[int], Any]:
        """(file_id, served-value fingerprint) for the stale-entry oracle."""
        if kind == MsgKind.LOOKUP:
            fid = int(payload["file_id"])
            return fid, fid
        if kind == MsgKind.GETATTR:
            fid = int(payload["file_id"])
            attrs = payload.get("attrs") or {}
            return fid, (fid, int(attrs.get("size", 0)))
        entries = payload.get("entries") or ()
        return None, tuple(entries)

    # -- invalidation ------------------------------------------------------
    def _h_invalidate(self, msg: Message) -> HandlerResult:
        payload = msg.payload
        server = msg.src
        self.invalidations += 1
        self._inval_gen += 1
        barrier = int(payload.get("barrier", 0))
        if barrier > self._floor.get(server, 0):
            self._floor[server] = barrier
        if payload.get("flush_server"):
            self.flush_server(server, "server-flush")
            return ("ack", {})
        # Drop the named keys under *every* upstream, not just the
        # sender: after a shard-map change the stale entry may be keyed
        # to the shard's previous owner.
        keys: List[CacheKey] = []
        for path in payload.get("paths", ()):
            for srv in self.upstreams:
                keys.append(("lookup", srv, path))
                keys.append(("attrs", srv, path))
        for dirname in payload.get("dirs", ()):
            for srv in self.upstreams:
                keys.append(("readdir", srv, dirname))
        for fid in payload.get("file_ids", ()):
            # Sorted: set order is hash-seed dependent and the drops are
            # trace-visible, which would break replay determinism.
            keys.extend(sorted(self._by_fid.get(int(fid), ())))
        self._drop_keys(keys, "invalidate")
        return ("ack", {})

    def _drop_keys(self, keys: List[CacheKey], reason: str,
                   count: bool = True) -> None:
        entries = self._entries
        for key in list(keys):
            entry = entries.pop(key, None)
            if entry is None:
                continue
            srv_keys = self._by_server.get(entry.server)
            if srv_keys is not None:
                srv_keys.discard(key)
            if entry.file_id is not None:
                fid_keys = self._by_fid.get(entry.file_id)
                if fid_keys is not None:
                    fid_keys.discard(key)
                    if not fid_keys:
                        del self._by_fid[entry.file_id]
            if count:
                self.entries_dropped += 1
                if self._stale_hist is not None:
                    self._stale_hist.labels(node=self.name).observe(
                        self.sim.now - entry.learned_at)
                trace = self.trace
                if not trace._noop:
                    trace.emit(self.sim.now, "netcache.drop", self.name,
                               key_kind=key[0], server=key[1], path=key[2],
                               reason=reason)

    def flush_server(self, server: str, reason: str) -> None:
        """Drop every entry learned from ``server`` and fence in-flight
        installs for it (generation bump)."""
        self._gen[server] = self._gen.get(server, 0) + 1
        # Sorted for replay determinism: the per-entry drop events are
        # trace-visible and set order varies with the process hash seed.
        keys = sorted(self._by_server.get(server, ()))
        if keys:
            self._drop_keys(keys, reason)
        self.flushes += 1
        trace = self.trace
        if not trace._noop:
            trace.emit(self.sim.now, "netcache.flush", self.name,
                       server=server, reason=reason, dropped=len(keys))

    def flush_all(self, reason: str = "flush") -> None:
        """Administrative full flush (fault-injection step)."""
        for server in self.upstreams:
            self.flush_server(server, reason)

    # -- lease-lapse sweep -------------------------------------------------
    def _arm_sweep(self) -> None:
        interval = self.endpoint.clock.to_global_interval(
            max(self.config.sweep_interval, 1e-3))
        self.timers.after(interval, self._sweep)

    def _sweep(self) -> None:
        if self.endpoint.alive and self._entries:
            dead = [key for key, entry in self._entries.items()
                    if not self._usable(entry)]
            if dead:
                self._drop_keys(dead, "sweep")
            self.sweeps += 1
        self._arm_sweep()

    # -- fault-injection surface -------------------------------------------
    def crash(self) -> None:
        """Kill the node: transport state and the entry store both die.

        In-flight installs are fenced by the generation bump, so a reply
        forwarded before the crash can never populate the store after a
        restart.
        """
        for server in self.upstreams:
            self._gen[server] = self._gen.get(server, 0) + 1
        self.endpoint.crash()
        self._entries.clear()
        self._by_fid.clear()
        for keys in self._by_server.values():
            keys.clear()
        self._floor.clear()
        trace = self.trace
        if not trace._noop:
            trace.emit(self.sim.now, "netcache.crash", self.name)

    def restart(self) -> None:
        """Resume service with an empty (cold) store."""
        self.endpoint.restart()
        trace = self.trace
        if not trace._noop:
            trace.emit(self.sim.now, "netcache.restart", self.name)

    # -- inspection --------------------------------------------------------
    @property
    def entry_count(self) -> int:
        """Live entries in the store."""
        return len(self._entries)

    def hit_rate(self) -> float:
        """Hits over handled read requests (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> Dict[str, int]:
        """Counter snapshot for ``StorageTankSystem.metrics_snapshot``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "installs": self.installs,
            "installs_rejected": self.installs_rejected,
            "invalidations": self.invalidations,
            "entries_dropped": self.entries_dropped,
            "flushes": self.flushes,
            "entries": len(self._entries),
            "keepalives_sent": self.keepalives_sent,
        }


def install_cache_router(net: ControlNetwork,
                         caches: Mapping[str, MetadataCacheNode],
                         upstreams: Tuple[str, ...]) -> None:
    """Attach the route-through-cache mode for a built cache tier.

    Client-originated cacheable reads addressed to a server are handed
    to the client's assigned cache node (stable hash of the client
    name → per-rack assignment).  The router returns None — falling
    back to direct delivery — for non-cacheable kinds, for traffic from
    servers or cache nodes themselves, and whenever the assigned cache
    is dead (crash degrades to forwarding).
    """
    ordered = [caches[name] for name in sorted(caches)]
    n = len(ordered)
    if n == 0:
        raise ValueError("install_cache_router needs at least one cache node")
    upstream_set = frozenset(upstreams)
    not_clients = upstream_set | frozenset(caches)
    cacheable = CACHEABLE_KINDS
    assignment: Dict[str, MetadataCacheNode] = {}

    def route(msg: Message) -> Optional[Endpoint]:
        if (msg.kind not in cacheable or msg.dst not in upstream_set
                or msg.src in not_clients):
            return None
        node = assignment.get(msg.src)
        if node is None:
            node = ordered[_stable_hash(msg.src) % n]
            assignment[msg.src] = node
        if not node.endpoint.alive:
            return None
        return node.endpoint

    net.set_cache_router(route)
