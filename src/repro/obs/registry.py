"""Metrics registry: counters, gauges and histograms with labels.

One :class:`MetricsRegistry` per built system is the single collection
point for every quantitative claim the experiments make — most
importantly the E7/E9 overhead trio (``lease.server.state_bytes``,
``lease.server.cpu_ops``, ``lease.server.msgs_sent``).  Protocol code
increments registry instruments instead of bespoke attributes; readers
(``metrics_snapshot``, :func:`repro.analysis.metrics.collect_overheads`,
the BENCH_obs exporters) consume :meth:`MetricsRegistry.snapshot`.

Design notes:

- *families + children*: ``registry.counter("lock.steals", labels=("node",))``
  returns a :class:`Metric` family; ``family.labels(node="server")`` a
  per-label-set child holding the value.  Families are idempotent —
  re-declaring with the same kind returns the existing family.
- *cardinality guard*: a family refuses to materialize more than
  ``max_label_sets`` distinct label sets (:class:`CardinalityError`),
  so a typo'd high-cardinality label (message ids, block numbers)
  fails loudly instead of silently eating memory.
- *callback gauges*: ``gauge.labels(...).set_function(fn)`` samples the
  source of truth at read time — how pre-existing substrate counters
  (network delivery counts, SAN byte counts) are mirrored into the
  registry without double bookkeeping.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Default histogram bucket upper bounds (simulated seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0)

#: Default limit on distinct label sets per metric family.
DEFAULT_MAX_LABEL_SETS = 1024


class CardinalityError(RuntimeError):
    """A metric family exceeded its distinct-label-set budget."""


class MetricError(ValueError):
    """Invalid metric declaration or use (kind clash, bad labels...)."""


class _Child:
    """Base class for one (family, label set) instrument."""

    __slots__ = ("labels",)

    def __init__(self, labels: Dict[str, str]) -> None:
        self.labels = labels


class CounterChild(_Child):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self, labels: Dict[str, str]) -> None:
        super().__init__(labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add a non-negative amount."""
        if amount < 0:
            raise MetricError("counters only go up; use a gauge")
        self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        return self._value


class GaugeChild(_Child):
    """A value that can go up and down, or track a callback."""

    __slots__ = ("_value", "_fn")

    def __init__(self, labels: Dict[str, str]) -> None:
        super().__init__(labels)
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value."""
        self._fn = None
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by a (possibly negative) delta."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Decrease the gauge."""
        self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Sample ``fn()`` at read time instead of storing a value."""
        self._fn = fn

    @property
    def value(self) -> float:
        """Current value (invokes the callback if one is installed)."""
        if self._fn is not None:
            return float(self._fn())
        return self._value


class HistogramChild(_Child):
    """Bucketed distribution of observed values."""

    __slots__ = ("buckets", "bucket_counts", "count", "sum")

    def __init__(self, labels: Dict[str, str],
                 buckets: Tuple[float, ...]) -> None:
        super().__init__(labels)
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)  # +inf overflow bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        # First bound with value <= bound, i.e. bisect_left; index
        # len(buckets) lands in the +inf overflow slot.
        self.bucket_counts[bisect_left(self.buckets, value)] += 1

    @property
    def value(self) -> float:
        """Sum of observations (the series value exported for histograms)."""
        return self.sum

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper bounds."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= target:
                return self.buckets[i] if i < len(self.buckets) else float("inf")
        return float("inf")


_CHILD_TYPES = {"counter": CounterChild, "gauge": GaugeChild,
                "histogram": HistogramChild}


class Metric:
    """One named metric family: a kind, label names and children."""

    __slots__ = ("name", "kind", "help", "label_names", "max_label_sets",
                 "buckets", "_children", "_nolabel_child")

    def __init__(self, name: str, kind: str, help: str,
                 label_names: Tuple[str, ...], max_label_sets: int,
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.max_label_sets = max_label_sets
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], _Child] = {}
        # Cached child for the common label-less family: labels() on a
        # hot path then costs one attribute read, no dict or tuple work.
        self._nolabel_child: Optional[_Child] = None

    def labels(self, **labels: str) -> Any:
        """The child instrument for one label set (created on demand)."""
        names = self.label_names
        if not labels and not names:
            child = self._nolabel_child
            if child is None:
                child = self._nolabel_child = self._materialize(())
            return child
        # Direct key build doubles as validation: a missing name raises
        # KeyError, extras are caught by the length check — no per-call
        # sorting of the label names.
        try:
            key = tuple(str(labels[k]) for k in names)
        except KeyError:
            raise MetricError(
                f"{self.name}: expected labels {names}, "
                f"got {tuple(sorted(labels))}") from None
        if len(labels) != len(names):
            raise MetricError(
                f"{self.name}: expected labels {names}, "
                f"got {tuple(sorted(labels))}")
        child = self._children.get(key)
        if child is None:
            child = self._materialize(key)
        return child

    def _materialize(self, key: Tuple[str, ...]) -> _Child:
        if len(self._children) >= self.max_label_sets:
            raise CardinalityError(
                f"{self.name}: more than {self.max_label_sets} label sets "
                f"(label names {self.label_names}); pick lower-cardinality "
                f"labels or raise ObservabilityConfig.max_label_sets")
        lbl = dict(zip(self.label_names, key))
        child: _Child
        if self.kind == "histogram":
            child = HistogramChild(lbl, self.buckets)
        else:
            child = _CHILD_TYPES[self.kind](lbl)
        self._children[key] = child
        return child

    @property
    def children(self) -> List[_Child]:
        """All materialized children, in creation order."""
        return list(self._children.values())

    def total(self) -> float:
        """Sum of every child's value (counters/gauges: values;
        histograms: sums)."""
        return sum(c.value for c in self._children.values())


class MetricsRegistry:
    """Collection point for every metric family of one system."""

    def __init__(self, max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
                 default_buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.max_label_sets = max_label_sets
        self.default_buckets = tuple(default_buckets)
        self._families: Dict[str, Metric] = {}

    # -- declaration ----------------------------------------------------
    def _declare(self, name: str, kind: str, help: str,
                 labels: Iterable[str], buckets: Optional[Tuple[float, ...]],
                 ) -> Metric:
        label_names = tuple(labels)
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind:
                raise MetricError(f"{name} already declared as {fam.kind}")
            if fam.label_names != label_names:
                raise MetricError(
                    f"{name} already declared with labels {fam.label_names}")
            return fam
        fam = Metric(name, kind, help, label_names, self.max_label_sets,
                     buckets=tuple(buckets) if buckets else self.default_buckets)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> Metric:
        """Declare (idempotently) a counter family."""
        return self._declare(name, "counter", help, labels, None)

    def gauge(self, name: str, help: str = "",
              labels: Iterable[str] = ()) -> Metric:
        """Declare (idempotently) a gauge family."""
        return self._declare(name, "gauge", help, labels, None)

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = (),
                  buckets: Optional[Tuple[float, ...]] = None) -> Metric:
        """Declare (idempotently) a histogram family."""
        return self._declare(name, "histogram", help, labels, buckets)

    # -- reading ---------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        """Look up a family by name (None if never declared)."""
        return self._families.get(name)

    def families(self) -> List[Metric]:
        """All declared families in declaration order."""
        return list(self._families.values())

    def value(self, name: str, **labels: str) -> float:
        """Convenience: one child's current value (0.0 if absent)."""
        fam = self._families.get(name)
        if fam is None:
            return 0.0
        key = tuple(str(labels[k]) for k in fam.label_names if k in labels)
        if len(key) != len(fam.label_names):
            return fam.total()
        child = fam._children.get(key)
        return child.value if child is not None else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """Full registry state as plain data (stable export shape)."""
        out: Dict[str, Any] = {}
        for fam in self._families.values():
            series = []
            for child in fam.children:
                entry: Dict[str, Any] = {"labels": dict(child.labels)}
                if isinstance(child, HistogramChild):
                    entry["count"] = child.count
                    entry["sum"] = child.sum
                    entry["buckets"] = {str(b): n for b, n in
                                        zip(fam.buckets, child.bucket_counts)}
                    entry["buckets"]["+inf"] = child.bucket_counts[-1]
                else:
                    entry["value"] = child.value
                series.append(entry)
            out[fam.name] = {"kind": fam.kind, "help": fam.help,
                             "series": series}
        return out

    def flat(self) -> Dict[str, float]:
        """``name{a=b,...} -> value`` flattening (tests, CSV export)."""
        out: Dict[str, float] = {}
        for fam in self._families.values():
            for child in fam.children:
                if child.labels:
                    key = fam.name + "{" + ",".join(
                        f"{k}={v}" for k, v in sorted(child.labels.items())) + "}"
                else:
                    key = fam.name
                out[key] = child.value
        return out
