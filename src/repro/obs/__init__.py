"""Unified observability layer: metrics registry, spans, exporters.

``repro.obs`` is the single substrate through which every protocol
reports the paper's E7/E9 overhead counters (server lease state bytes,
lease CPU ops, lease messages) and through which experiments export
machine-readable run documents (``BENCH_obs.json``).

The pieces:

- :mod:`repro.obs.registry` — Prometheus-flavoured counters, gauges and
  histograms with labels and a cardinality guard.
- :mod:`repro.obs.spans` — span tracing over simulated time, layered on
  ``sim.trace.TraceRecorder``.
- :mod:`repro.obs.export` — versioned JSON/CSV export schema.
- :mod:`repro.obs.runlog` — run collection: samples per-protocol
  overhead series while experiments execute.
- :mod:`repro.obs.artifact` — versioned failure artifacts written by
  the schedule fuzzer (:mod:`repro.simtest`) for seed replay.

An :class:`Observability` bundle (one per built system) ties a registry
to an optional span tracer.  This package never imports
``repro.core`` — configuration arrives duck-typed — so ``core.config``
is free to reference obs types without an import cycle.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.registry import (CardinalityError, MetricError,
                                MetricsRegistry, DEFAULT_BUCKETS,
                                DEFAULT_MAX_LABEL_SETS)
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "Observability", "MetricsRegistry", "SpanTracer", "Span",
    "CardinalityError", "MetricError", "DEFAULT_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
]


class Observability:
    """One system's metrics registry plus (optional) span tracer.

    ``spans_enabled`` gates all span creation: when off (the tier-1
    default) :meth:`begin_span` returns ``None`` and instrumented code
    falls through without touching the tracer, so the simulation's
    event sequence is untouched.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[SpanTracer] = None,
                 spans_enabled: bool = False) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer()
        self.spans_enabled = spans_enabled

    @classmethod
    def from_config(cls, obs_cfg: Any = None, trace: Any = None,
                    force_spans: bool = False) -> "Observability":
        """Build a bundle from an ``ObservabilityConfig``-shaped object.

        ``obs_cfg`` is duck-typed (``histogram_buckets``,
        ``max_label_sets``, ``spans`` attributes are read with
        defaults) so this package stays independent of ``core.config``.
        ``force_spans`` turns span collection on regardless of config —
        used when a run collector is active.
        """
        buckets = tuple(getattr(obs_cfg, "histogram_buckets", None)
                        or DEFAULT_BUCKETS)
        max_sets = getattr(obs_cfg, "max_label_sets", DEFAULT_MAX_LABEL_SETS)
        registry = MetricsRegistry(max_label_sets=max_sets,
                                   default_buckets=buckets)
        tracer = SpanTracer(trace=trace)
        spans = bool(getattr(obs_cfg, "spans", False)) or force_spans
        return cls(registry=registry, tracer=tracer, spans_enabled=spans)

    def begin_span(self, t: float, kind: str, node: str,
                   parent: Optional[Span] = None, **attrs: Any,
                   ) -> Optional[Span]:
        """Open a span if span collection is on; otherwise ``None``.

        Callers hold the returned handle and ``.end(t)`` it, guarding
        with ``if span is not None`` — the cheap no-op path keeps hot
        protocol code free of tracer work in normal runs.
        """
        if not self.spans_enabled:
            return None
        return self.tracer.begin(t, kind, node, parent=parent, **attrs)
