"""JSON/CSV exporters with a stable run-manifest schema.

The JSON document written by :func:`export_json` (and by the harness
``--metrics-out`` flag, and by the benchmark suite as ``BENCH_obs.json``)
is the repo's perf-trajectory interchange format.  Its top-level shape
is versioned via ``schema``; additive changes bump the minor number,
breaking changes the major.  A golden-file test pins the structure.

Schema (``repro.obs/1.0``)::

    {
      "schema": "repro.obs/1.0",
      "manifest": {"experiment": ..., "seed": ..., "protocols": [...],
                   "config": {...}, "extra": {...}},
      "runs": [
        {"name": ..., "labels": {...},
         "metrics": {<family>: {"kind", "help", "series": [...]}},
         "series": {<series-name>: {"times": [...], "values": [...]}},
         "spans": [...]}
      ]
    }

``metrics`` is a point-in-time :meth:`MetricsRegistry.snapshot`;
``series`` holds time-sampled trajectories (e.g. per-protocol
``state_bytes`` over simulated time) collected by
:mod:`repro.obs.runlog`; ``spans`` is optional completed-span data.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional

SCHEMA = "repro.obs/1.0"


def make_manifest(experiment: str = "", seed: Optional[int] = None,
                  protocols: Iterable[str] = (),
                  config: Optional[Mapping[str, Any]] = None,
                  **extra: Any) -> Dict[str, Any]:
    """Build the run manifest block of the export document."""
    return {
        "experiment": experiment,
        "seed": seed,
        "protocols": list(protocols),
        "config": dict(config) if config else {},
        "extra": dict(extra),
    }


def make_document(manifest: Mapping[str, Any],
                  runs: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Assemble the versioned top-level export document."""
    return {"schema": SCHEMA, "manifest": dict(manifest), "runs": list(runs)}


def run_entry(name: str, labels: Optional[Mapping[str, str]] = None,
              metrics: Optional[Mapping[str, Any]] = None,
              series: Optional[Mapping[str, Any]] = None,
              spans: Optional[List[Dict[str, Any]]] = None) -> Dict[str, Any]:
    """One per-run record (typically one protocol under one workload)."""
    return {
        "name": name,
        "labels": dict(labels) if labels else {},
        "metrics": dict(metrics) if metrics else {},
        "series": dict(series) if series else {},
        "spans": list(spans) if spans else [],
    }


def export_json(document: Mapping[str, Any], path: str) -> None:
    """Write the document to ``path`` as deterministic, sorted JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def dumps_json(document: Mapping[str, Any]) -> str:
    """The export document as a deterministic JSON string."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def metrics_to_csv_rows(document: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Flatten a document's point-in-time metrics into CSV-able rows."""
    rows: List[Dict[str, Any]] = []
    for run in document.get("runs", []):
        for fam_name, fam in sorted(run.get("metrics", {}).items()):
            for entry in fam.get("series", []):
                label_str = ",".join(f"{k}={v}" for k, v in
                                     sorted(entry.get("labels", {}).items()))
                value = entry.get("value", entry.get("sum", 0.0))
                rows.append({"run": run["name"], "metric": fam_name,
                             "kind": fam.get("kind", ""),
                             "labels": label_str, "value": value})
    return rows


def export_csv(document: Mapping[str, Any], path: str) -> None:
    """Write the flattened metric rows of a document to ``path``."""
    with open(path, "w", encoding="utf-8", newline="") as fh:
        _write_csv(document, fh)


def dumps_csv(document: Mapping[str, Any]) -> str:
    """The flattened metric rows as a CSV string."""
    buf = io.StringIO()
    _write_csv(document, buf)
    return buf.getvalue()


def _write_csv(document: Mapping[str, Any], fh: Any) -> None:
    writer = csv.DictWriter(
        fh, fieldnames=["run", "metric", "kind", "labels", "value"])
    writer.writeheader()
    for row in metrics_to_csv_rows(document):
        writer.writerow(row)
