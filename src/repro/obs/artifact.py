"""Versioned failure artifacts (``repro.simtest/1.0``).

When the schedule fuzzer (:mod:`repro.simtest`) finds an oracle
violation, it writes everything needed to reproduce and diagnose the
failure into one deterministic JSON document:

- the *schedule* (root seed, environment knobs, fault steps) — enough
  to rebuild the identical run, since all randomness flows from the
  seed through :class:`repro.sim.rng.RandomStreams`;
- the *verdicts* (per-oracle violation lists);
- the run's *trace hash* (replays must match it bit for bit);
- an ASCII lease *timeline* (:mod:`repro.analysis.timeline`) for humans;
- the full ``repro.obs/1.0`` metrics/spans document of the failing run.

``python -m repro.simtest --replay <artifact>`` feeds the document back
through the runner and compares trace hashes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

ARTIFACT_SCHEMA = "repro.simtest/1.0"


def make_failure_artifact(schedule: Mapping[str, Any],
                          violations: List[Dict[str, Any]],
                          trace_hash: str,
                          timeline: str = "",
                          obs_document: Optional[Mapping[str, Any]] = None,
                          **extra: Any) -> Dict[str, Any]:
    """Assemble one failure-artifact document."""
    return {
        "schema": ARTIFACT_SCHEMA,
        "schedule": dict(schedule),
        "violations": list(violations),
        "trace_hash": trace_hash,
        "timeline": timeline,
        "obs": dict(obs_document) if obs_document is not None else {},
        "extra": dict(extra),
    }


def write_artifact(document: Mapping[str, Any], path: str) -> None:
    """Write an artifact to ``path`` as deterministic, sorted JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_artifact(path: str) -> Dict[str, Any]:
    """Load an artifact, validating its schema stamp."""
    with open(path, "r", encoding="utf-8") as fh:
        document: Dict[str, Any] = json.load(fh)
    schema = document.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {ARTIFACT_SCHEMA!r}, got {schema!r}")
    return document
