"""Span-based tracing layered on :class:`repro.sim.trace.TraceRecorder`.

A :class:`Span` is a named interval of *simulated* time attributed to a
node — a lease phase, a message round-trip, a lock-steal resolution, a
recovery window.  Spans nest through an explicit ``parent`` argument;
there is no implicit context-manager nesting because span lifetimes
routinely straddle generator ``yield`` points in simulator processes,
where a ``with`` block's dynamic extent would lie about the interval.

Every begin/end also flows through the underlying ``TraceRecorder`` as
``span.begin`` / ``span.end`` records, so the existing trace tooling
(audits, ``count_prefix``) sees spans for free and ``keep_kinds``
filtering applies uniformly.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from repro.sim.trace import TraceRecorder


class Span:
    """One named interval of simulated time on one node."""

    __slots__ = ("span_id", "parent_id", "kind", "node", "start", "end_time",
                 "attrs", "_tracer")

    def __init__(self, tracer: "SpanTracer", span_id: int,
                 parent_id: Optional[int], kind: str, node: str,
                 start: float, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.node = node
        self.start = start
        self.end_time: Optional[float] = None
        self.attrs = attrs

    @property
    def open(self) -> bool:
        """True until :meth:`end` is called."""
        return self.end_time is None

    @property
    def duration(self) -> Optional[float]:
        """Simulated seconds from begin to end (None while open)."""
        if self.end_time is None:
            return None
        return self.end_time - self.start

    def end(self, t: float, **attrs: Any) -> "Span":
        """Close the span at simulated time ``t`` (idempotent)."""
        if self.end_time is None:
            self.attrs.update(attrs)
            self._tracer._close(self, t)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form for export."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "node": self.node,
            "start": self.start,
            "end": self.end_time,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class SpanTracer:
    """Factory and archive for :class:`Span` intervals.

    Takes explicit time arguments rather than a clock so callers pass
    the same local/global simulated times they already thread through
    the protocol code.  Completed spans are retained (bounded by
    ``max_spans``) for export; begin/end events are mirrored into the
    attached ``TraceRecorder`` when one is present.
    """

    def __init__(self, trace: Optional[TraceRecorder] = None,
                 max_spans: int = 100_000) -> None:
        self.trace = trace
        self.max_spans = max_spans
        self._ids = itertools.count(1)
        self._open: Dict[int, Span] = {}
        self.completed: List[Span] = []
        self.dropped = 0

    def begin(self, t: float, kind: str, node: str,
              parent: Optional[Span] = None, **attrs: Any) -> Span:
        """Open a span at simulated time ``t``."""
        span = Span(self, next(self._ids),
                    parent.span_id if parent is not None else None,
                    kind, node, t, dict(attrs))
        self._open[span.span_id] = span
        if self.trace is not None:
            self.trace.emit(t, f"span.begin.{kind}", node,
                            span_id=span.span_id, parent_id=span.parent_id)
        return span

    def _close(self, span: Span, t: float) -> None:
        span.end_time = t
        self._open.pop(span.span_id, None)
        if len(self.completed) < self.max_spans:
            self.completed.append(span)
        else:
            self.dropped += 1
        if self.trace is not None:
            self.trace.emit(t, f"span.end.{span.kind}", span.node,
                            span_id=span.span_id,
                            duration=span.end_time - span.start)

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended."""
        return list(self._open.values())

    def select(self, kind_prefix: str) -> List[Span]:
        """Completed spans whose kind matches a dotted prefix."""
        return [s for s in self.completed
                if s.kind == kind_prefix or s.kind.startswith(kind_prefix + ".")]

    def children_of(self, span: Span) -> List[Span]:
        """Completed spans whose parent is ``span``."""
        return [s for s in self.completed if s.parent_id == span.span_id]

    def total_duration(self, kind_prefix: str) -> float:
        """Sum of durations over completed spans matching a prefix."""
        return sum(s.duration or 0.0 for s in self.select(kind_prefix))

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All completed spans as plain data, in completion order."""
        return [s.to_dict() for s in self.completed]
