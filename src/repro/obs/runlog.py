"""Run collection: turn live systems into exportable metric documents.

A :class:`RunCollector` is installed (via :func:`use` or
:func:`collecting`) around experiment code; while it is active,
``build_system`` reports every installation it assembles and the
collector

- labels the run (protocol, client count, seed),
- spawns a sampler process on the system's simulator that records the
  E7/E9 overhead trio (``state_bytes``, ``lease_cpu_ops``,
  ``lease_msgs_sent``) plus ``client_lease_msgs`` as time series over
  *simulated* time,
- and, at :meth:`RunCollector.export` time, snapshots each system's
  metrics registry and completed spans into the versioned
  ``repro.obs/1.0`` document (see :mod:`repro.obs.export`).

When no collector is active, ``build_system`` spawns nothing — tier-1
runs execute the exact event sequence they always did.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Generator, List, Optional

from repro.obs.export import export_json, make_document, make_manifest, run_entry

#: Series names sampled for every run (the paper's overhead counters,
#: plus the PR 10 protocol-cost ratio: client-originated RPC round
#: trips — keep-alives excluded — per completed operation).
OVERHEAD_SERIES = ("state_bytes", "lease_cpu_ops", "lease_msgs_sent",
                   "client_lease_msgs", "messages_per_op")

_ACTIVE: Optional["RunCollector"] = None


def active() -> Optional["RunCollector"]:
    """The currently installed collector (None almost always)."""
    return _ACTIVE


@contextmanager
def use(collector: "RunCollector") -> Generator["RunCollector", None, None]:
    """Install ``collector`` for the duration of the with-block."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = collector
    try:
        yield collector
    finally:
        _ACTIVE = prev


@contextmanager
def collecting(**manifest_kwargs: Any) -> Generator["RunCollector", None, None]:
    """Create and install a fresh :class:`RunCollector` in one step."""
    with use(RunCollector(**manifest_kwargs)) as collector:
        yield collector


class _RunRecord:
    """One observed system: labels, its obs handle and sampled series."""

    def __init__(self, name: str, labels: Dict[str, str],
                 system: Any) -> None:
        self.name = name
        self.labels = labels
        self.system = system
        self.series: Dict[str, Dict[str, List[float]]] = {
            s: {"times": [], "values": []} for s in OVERHEAD_SERIES}


class RunCollector:
    """Accumulates per-system overhead series and registry snapshots."""

    def __init__(self, experiment: str = "", seed: Optional[int] = None,
                 sample_interval: Optional[float] = None,
                 **extra: Any) -> None:
        self.experiment = experiment
        self.seed = seed
        self.sample_interval = sample_interval
        self.extra = extra
        self.records: List[_RunRecord] = []
        self._name_counts: Dict[str, int] = {}

    # -- wiring (called by build_system) ---------------------------------
    def on_system_built(self, system: Any) -> None:
        """Label a freshly built system and start its overhead sampler."""
        cfg = system.config
        base = cfg.protocol
        n = self._name_counts.get(base, 0)
        self._name_counts[base] = n + 1
        name = base if n == 0 else f"{base}@{n}"
        record = _RunRecord(name, {
            "protocol": cfg.protocol,
            "n_clients": str(cfg.n_clients),
            "n_servers": str(cfg.n_servers),
            "seed": str(cfg.seed),
        }, system)
        self.records.append(record)
        interval = (self.sample_interval
                    if self.sample_interval is not None
                    else getattr(getattr(cfg, "observability", None),
                                 "sample_interval", 1.0))
        system.sim.process(self._sampler(system, record, interval),
                           name=f"obs:sampler:{name}")

    def _sample(self, system: Any, record: _RunRecord) -> None:
        t = system.sim.now
        totals = {s: 0.0 for s in OVERHEAD_SERIES}
        for srv in system.servers.values():
            snap = srv.authority.overhead_snapshot()
            totals["state_bytes"] += snap.get("state_bytes", 0.0)
            totals["lease_cpu_ops"] += snap.get("lease_cpu_ops", 0.0)
            totals["lease_msgs_sent"] += snap.get("lease_msgs_sent", 0.0)
        client_msgs = 0.0
        rpcs = 0.0
        ops = 0.0
        for cl in system.pool.iter_active():
            snap = cl.overhead_snapshot()
            client_msgs += snap.get("lease_msgs_sent", 0.0)
            # The fleet ratio needs raw counts, not per-client ratios:
            # rpc_total = ratio * ops for each client, summed.
            ops += snap.get("ops_completed", 0.0)
            rpcs += (snap.get("messages_per_op", 0.0)
                     * snap.get("ops_completed", 0.0))
        for agent in system.pool.iter_agents():
            snap = agent.overhead_snapshot()
            client_msgs += snap.get("lease_msgs_sent", 0.0)
            ops += snap.get("ops_completed", 0.0)
            rpcs += (snap.get("messages_per_op", 0.0)
                     * snap.get("ops_completed", 0.0))
        totals["client_lease_msgs"] = client_msgs
        totals["messages_per_op"] = rpcs / ops if ops else 0.0
        for sname, value in totals.items():
            record.series[sname]["times"].append(t)
            record.series[sname]["values"].append(value)

    def _sampler(self, system: Any, record: _RunRecord, interval: float,
                 ) -> Generator[Any, Any, None]:
        while True:
            self._sample(system, record)
            yield system.sim.timeout(interval)

    # -- export ----------------------------------------------------------
    def document(self) -> Dict[str, Any]:
        """The collected state as a ``repro.obs/1.0`` document."""
        runs = []
        for record in self.records:
            self._sample(record.system, record)  # final closing sample
            obs = getattr(record.system, "obs", None)
            metrics = obs.registry.snapshot() if obs is not None else {}
            spans = (obs.tracer.to_dicts()
                     if obs is not None and obs.tracer is not None else [])
            runs.append(run_entry(record.name, labels=record.labels,
                                  metrics=metrics, series=record.series,
                                  spans=spans))
        manifest = make_manifest(
            experiment=self.experiment, seed=self.seed,
            protocols=sorted({r.labels["protocol"] for r in self.records}),
            **self.extra)
        return make_document(manifest, runs)

    def export(self, path: str) -> None:
        """Write the collected document to ``path`` as JSON."""
        export_json(self.document(), path)
