"""Zipf-distributed discrete sampling."""

from __future__ import annotations

from typing import Optional

import numpy as np


class ZipfSampler:
    """Sample ranks 0..n-1 with probability ∝ 1/(rank+1)^s.

    ``s = 0`` degenerates to the uniform distribution, which is the
    default workload; ``s ≈ 0.8-1.2`` models the hot-file skew typical
    of file system traces.
    """

    def __init__(self, n: int, s: float, rng: np.random.Generator) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if s < 0:
            raise ValueError(f"s must be non-negative, got {s}")
        self.n = n
        self.s = s
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), s)
        self._cdf = np.cumsum(weights / weights.sum())

    def sample(self) -> int:
        """Draw one rank."""
        u = self._rng.random()
        return int(np.searchsorted(self._cdf, u, side="right"))

    def sample_many(self, k: int) -> np.ndarray:
        """Draw ``k`` ranks at once."""
        u = self._rng.random(k)
        return np.searchsorted(self._cdf, u, side="right").astype(int)
