"""Synthetic "modern file system workload" generation (paper §6).

The paper's stated next step was to validate the lease design against
measured file system workloads.  No IBM traces ship with this
reproduction, so this module synthesizes workloads with the statistical
structure the trace literature of the era reports (Baker et al. '91,
Roselli et al. '00):

- **file sizes** follow a lognormal body with a small number of large
  files dominating bytes;
- access is **session-structured**: open → a burst of sequential or
  random I/O → close, rather than uniform single operations;
- popularity is **Zipf-skewed** with a distinct hot set;
- most files are read-mostly, a minority are write-hot;
- think times between sessions are heavy-tailed (lognormal).

A :class:`TraceSynthesizer` turns these knobs into a concrete
:class:`WorkloadTrace` — a reproducible list of per-client sessions —
and :class:`TraceReplayer` replays one against a built system, so the
same trace can drive every protocol for apples-to-apples comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.client.node import StorageTankClient
from repro.core.system import StorageTankSystem
from repro.harness.common import APP_ERRORS
from repro.sim.events import Event
from repro.storage.blockmap import BLOCK_SIZE
from repro.workloads.generator import WorkloadStats
from repro.workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class TraceOp:
    """One I/O inside a session."""

    op: str            # "read" | "write"
    offset: int        # bytes
    nbytes: int


@dataclass(frozen=True)
class Session:
    """One open→I/O→close burst by one client."""

    client: str
    path: str
    mode: str                  # "r" | "w"
    start_after: float         # think time before the session (seconds)
    ops: Tuple[TraceOp, ...]


@dataclass
class WorkloadTrace:
    """A complete synthetic trace: files plus per-client session lists."""

    files: Dict[str, int]                  # path -> size bytes
    sessions: Dict[str, List[Session]]     # client -> ordered sessions
    seed: int = 0

    @property
    def total_sessions(self) -> int:
        """Sessions across all clients."""
        return sum(len(v) for v in self.sessions.values())

    @property
    def total_ops(self) -> int:
        """I/O operations across all sessions."""
        return sum(len(s.ops) for v in self.sessions.values() for s in v)

    def bytes_by_op(self) -> Dict[str, int]:
        """Total bytes read/written by the trace."""
        out = {"read": 0, "write": 0}
        for v in self.sessions.values():
            for s in v:
                for op in s.ops:
                    out[op.op] += op.nbytes
        return out


@dataclass(frozen=True)
class TraceProfile:
    """Statistical knobs for synthesis."""

    n_files: int = 50
    # lognormal size body (parameters of ln(size in blocks))
    size_mu: float = 1.2
    size_sigma: float = 1.0
    max_file_blocks: int = 512
    zipf_s: float = 0.9               # popularity skew
    write_hot_fraction: float = 0.2   # fraction of files that take writes
    sessions_per_client: int = 40
    ops_per_session_mean: float = 6.0
    sequential_fraction: float = 0.6  # sessions doing sequential I/O
    io_blocks_mean: float = 2.0
    think_mu: float = -1.0            # lognormal think time (seconds)
    think_sigma: float = 1.0


class TraceSynthesizer:
    """Deterministic trace generation from a seed and a profile."""

    def __init__(self, profile: Optional[TraceProfile] = None, seed: int = 0) -> None:
        self.profile = profile or TraceProfile()
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def synthesize(self, clients: Sequence[str], prefix: str = "/trace",
                   ) -> WorkloadTrace:
        """Build a trace for the given client names."""
        p = self.profile
        rng = self._rng
        # File population with lognormal sizes.
        files: Dict[str, int] = {}
        sizes_blocks = np.clip(
            np.round(np.exp(rng.normal(p.size_mu, p.size_sigma, p.n_files))),
            1, p.max_file_blocks).astype(int)
        paths = [f"{prefix}/f{i:04d}" for i in range(p.n_files)]
        for path, blocks in zip(paths, sizes_blocks):
            files[path] = int(blocks) * BLOCK_SIZE
        # A write-hot subset; everything else is read-only to writers.
        n_hot = max(1, int(p.n_files * p.write_hot_fraction))
        write_hot = set(rng.choice(p.n_files, size=n_hot, replace=False))

        zipf = ZipfSampler(p.n_files, p.zipf_s, rng)
        sessions: Dict[str, List[Session]] = {}
        for client in clients:
            out: List[Session] = []
            for _ in range(p.sessions_per_client):
                fidx = zipf.sample()
                path = paths[fidx]
                size_blocks = files[path] // BLOCK_SIZE
                writing = fidx in write_hot and rng.random() < 0.5
                n_ops = max(1, int(rng.poisson(p.ops_per_session_mean)))
                sequential = rng.random() < p.sequential_fraction
                ops = self._make_ops(rng, n_ops, size_blocks, writing,
                                     sequential, p)
                think = float(np.exp(rng.normal(p.think_mu, p.think_sigma)))
                out.append(Session(client=client, path=path,
                                   mode="w" if writing else "r",
                                   start_after=think, ops=tuple(ops)))
            sessions[client] = out
        return WorkloadTrace(files=files, sessions=sessions, seed=self.seed)

    @staticmethod
    def _make_ops(rng: np.random.Generator, n_ops: int, size_blocks: int,
                  writing: bool,
                  sequential: bool, p: TraceProfile) -> List[TraceOp]:
        ops: List[TraceOp] = []
        cursor = 0
        for _ in range(n_ops):
            io_blocks = max(1, int(rng.poisson(p.io_blocks_mean)))
            io_blocks = min(io_blocks, size_blocks)
            if sequential:
                start = cursor % max(size_blocks - io_blocks + 1, 1)
                cursor = start + io_blocks
            else:
                start = int(rng.integers(0, max(size_blocks - io_blocks + 1, 1)))
            kind = "write" if (writing and rng.random() < 0.6) else "read"
            ops.append(TraceOp(op=kind, offset=start * BLOCK_SIZE,
                               nbytes=io_blocks * BLOCK_SIZE))
        return ops


class TraceReplayer:
    """Replays a :class:`WorkloadTrace` against a built system."""

    def __init__(self, system: StorageTankSystem, trace: WorkloadTrace) -> None:
        self.system = system
        self.trace = trace
        self.stats: Dict[str, WorkloadStats] = {
            c: WorkloadStats() for c in trace.sessions}

    def populate(self) -> Generator[Event, Any, None]:
        """Create the trace's file population (one bootstrap client)."""
        first = next(self.system.pool.iter_active())
        for path, size in self.trace.files.items():
            yield from first.create(path, size=size)

    def replay_client(self, client_name: str) -> Generator[Event, Any, WorkloadStats]:
        """Replay one client's session list (run as a process)."""
        sim = self.system.sim
        client = self.system.client(client_name)
        stats = self.stats[client_name]
        for session in self.trace.sessions[client_name]:
            yield sim.timeout(session.start_after)
            stats.ops_attempted += 1
            try:
                fd = yield from client.open_file(session.path, session.mode)
            except APP_ERRORS:
                stats.ops_rejected += 1
                continue
            started = sim.now
            ok = True
            for op in session.ops:
                stats.ops_attempted += 1
                try:
                    if op.op == "read":
                        yield from client.read(fd, op.offset, op.nbytes)
                        stats.reads += 1
                    else:
                        yield from client.write(fd, op.offset, op.nbytes)
                        stats.writes += 1
                    stats.ops_succeeded += 1
                except APP_ERRORS:
                    stats.ops_rejected += 1
                    ok = False
                    break
                except KeyError:
                    ok = False
                    break
            try:
                yield from client.close(fd)
                if ok:
                    stats.ops_succeeded += 1
                    stats.latencies.append(sim.now - started)
            except (KeyError, *APP_ERRORS):
                stats.ops_rejected += 1
        return stats

    def run(self, hard_limit: float = 3600.0) -> Dict[str, WorkloadStats]:
        """Populate, replay every client concurrently, return stats."""
        sim = self.system.sim
        boot = self.system.spawn(self.populate(), "trace:populate")
        sim.run_until_event(boot, hard_limit=hard_limit)
        procs = [self.system.spawn(self.replay_client(c), f"trace:{c}")
                 for c in self.trace.sessions]
        for p in procs:
            sim.run_until_event(p, hard_limit=hard_limit)
        return self.stats
