"""Synthetic file system workloads.

The paper's §6 notes that "measurement of modern file system workloads
are required to experimentally verify our design" — the prototype was
never measured.  These generators provide the parameterized synthetic
load the experiments sweep: per-client application processes issuing
open/read/write/close with exponential think times, uniform or Zipf
file popularity, and configurable read/write mixes and sharing levels.
"""

from repro.workloads.generator import (
    WorkloadDriver,
    WorkloadStats,
    populate_files,
    run_workload,
)
from repro.workloads.traces import (
    Session,
    TraceOp,
    TraceProfile,
    TraceReplayer,
    TraceSynthesizer,
    WorkloadTrace,
)
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "Session",
    "TraceOp",
    "TraceProfile",
    "TraceReplayer",
    "TraceSynthesizer",
    "WorkloadDriver",
    "WorkloadStats",
    "WorkloadTrace",
    "ZipfSampler",
    "populate_files",
    "run_workload",
]
