"""Per-client workload driver processes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

import numpy as np

from repro.client.node import (
    ClientDisconnectedError,
    ClientIOError,
    ClientQuiescedError,
    StorageTankClient,
)
from repro.core.config import WorkloadConfig
from repro.core.system import StorageTankSystem
from repro.net.message import DeliveryError, NackError
from repro.protocols.nfs_polling import NfsPollingClient
from repro.sim.events import Event
from repro.storage.blockmap import BLOCK_SIZE
from repro.workloads.zipf import ZipfSampler


@dataclass
class WorkloadStats:
    """Per-driver outcome counters and latencies."""

    ops_attempted: int = 0
    ops_succeeded: int = 0
    ops_rejected: int = 0       # quiesced/disconnected (lease protecting us)
    ops_failed: int = 0         # transport-level failures
    reads: int = 0
    writes: int = 0
    meta_reads: int = 0         # lookup/getattr/readdir ops
    meta_mutates: int = 0       # unlink+recreate ops
    latencies: List[float] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        """Mean completed-op latency in global seconds."""
        return float(np.mean(self.latencies)) if self.latencies else 0.0


def populate_files(system: StorageTankSystem,
                   cfg: Optional[WorkloadConfig] = None,
                   prefix: str = "/wl",
                   ) -> Generator[Event, Any, List[str]]:
    """Create the shared working set (run as a process before drivers).

    Uses the first client to issue the creates, which also bootstraps
    that client's lease.
    """
    wcfg = cfg or system.config.workload
    first = next(system.pool.iter_active())
    paths = []
    for i in range(wcfg.n_files):
        path = f"{prefix}/f{i:04d}"
        yield from first.create(path, size=wcfg.file_size_blocks * BLOCK_SIZE)
        paths.append(path)
    return paths


class WorkloadDriver:
    """One application process on one client."""

    def __init__(self, system: StorageTankSystem, client_name: str,
                 paths: List[str], cfg: Optional[WorkloadConfig] = None,
                 stream: Optional[str] = None) -> None:
        self.system = system
        self.client = system.client(client_name)
        self.paths = paths
        self.cfg = cfg or system.config.workload
        self.rng = system.streams.get(stream or f"workload.{client_name}")
        self.zipf = ZipfSampler(len(paths), self.cfg.zipf_s, self.rng)
        self.stats = WorkloadStats()
        self._fds: Dict[str, int] = {}
        self._meta_seq = 0
        self._scratch: Optional[str] = None
        self._stopped = False

    def stop(self) -> None:
        """Ask the driver loop to exit after the current op."""
        self._stopped = True

    def run(self, duration: float) -> Generator[Event, Any, WorkloadStats]:
        """Drive operations for ``duration`` global seconds."""
        sim = self.system.sim
        deadline = sim.now + duration
        while sim.now < deadline and not self._stopped:
            think = float(self.rng.exponential(self.cfg.think_time))
            yield sim.timeout(min(think, max(deadline - sim.now, 1e-6)))
            if sim.now >= deadline or self._stopped:
                break
            yield from self._one_op()
        return self.stats

    def _one_op(self) -> Generator[Event, Any, None]:
        sim = self.system.sim
        path = self.paths[self.zipf.sample()]
        # The > 0.0 guard keeps the RNG draw sequence of pre-existing
        # (data-only) workload configurations bit-identical.
        if (self.cfg.meta_fraction > 0.0
                and self.rng.random() < self.cfg.meta_fraction):
            yield from self._one_meta_op(path)
            return
        is_read = self.rng.random() < self.cfg.read_fraction
        self.stats.ops_attempted += 1
        started = sim.now
        try:
            fd = yield from self._fd_for(path, "r" if is_read else "w")
            max_block = max(self.cfg.file_size_blocks - self.cfg.io_blocks, 1)
            block = int(self.rng.integers(0, max_block))
            offset = block * BLOCK_SIZE
            nbytes = self.cfg.io_blocks * BLOCK_SIZE
            if is_read:
                yield from self.client.read(fd, offset, nbytes)
                self.stats.reads += 1
            else:
                yield from self.client.write(fd, offset, nbytes)
                self.stats.writes += 1
            if self.rng.random() < self.cfg.reopen_probability:
                yield from self.client.close(fd)
                self._fds.pop(self._fd_key(path), None)
            self.stats.ops_succeeded += 1
            self.stats.latencies.append(sim.now - started)
        except (ClientQuiescedError, ClientDisconnectedError):
            self.stats.ops_rejected += 1
            self._fds.clear()  # descriptors stale after lease trouble
        except ClientIOError:
            self.stats.ops_failed += 1
        except (DeliveryError, NackError):
            self.stats.ops_failed += 1
            self._fds.clear()
        except KeyError:
            self._fds.clear()  # fd table reset under us

    def _one_meta_op(self, path: str) -> Generator[Event, Any, None]:
        """One metadata op near ``path`` — a read (lookup/getattr/readdir)
        or, with probability ``meta_mutate_fraction``, a create+unlink
        pair that drives the server's cache-invalidation barrier.

        Mutations never touch the shared data files (unlinking a file a
        concurrent writer has open is outside the workload's contract
        with the consistency audit); they cycle a zero-length scratch
        path in the same directory, so cached directory listings and the
        scratch path's own lookup entries go stale-and-invalidated while
        data I/O is untouched.  Create and unlink alternate across
        *separate* ops and each is chased with a lookup of the scratch
        path: the namespace stays perturbed for whole think-time windows
        and the probe forces the cache tier to answer for the mutated
        path — a stale entry that survives the invalidation barrier is
        served to the oracle rather than idling unread.
        """
        sim = self.system.sim
        self.stats.ops_attempted += 1
        started = sim.now
        mutate = (self.cfg.meta_mutate_fraction > 0.0
                  and self.rng.random() < self.cfg.meta_mutate_fraction)
        try:
            if mutate:
                if self._scratch is None:
                    self._meta_seq += 1
                    scratch = (f"{path}.{self.client.name}"
                               f".m{self._meta_seq:04d}")
                    yield from self.client.create(scratch, size=0)
                    self._scratch = scratch
                else:
                    scratch, self._scratch = self._scratch, None
                    yield from self.client.unlink(scratch)
                self.stats.meta_mutates += 1
                try:
                    # Probe the mutated path; after the unlink the
                    # correct answer is a not-found NACK.
                    yield from self.client.lookup(scratch)
                except NackError:
                    pass
            else:
                kind = int(self.rng.integers(0, 3))
                if kind == 0:
                    yield from self.client.lookup(path)
                elif kind == 1:
                    yield from self.client.getattr(path)
                else:
                    yield from self.client.readdir(
                        path.rsplit("/", 1)[0] or "/")
                self.stats.meta_reads += 1
            self.stats.ops_succeeded += 1
            self.stats.latencies.append(sim.now - started)
        except (ClientQuiescedError, ClientDisconnectedError):
            self.stats.ops_rejected += 1
            self._fds.clear()
        except ClientIOError:
            self.stats.ops_failed += 1
        except (DeliveryError, NackError):
            # Racing unlinks/creates on a shared namespace nack benignly
            # (not-found / exists); count and move on.
            self.stats.ops_failed += 1

    def _fd_key(self, path: str) -> str:
        return path

    def _fd_for(self, path: str, mode: str) -> Generator[Event, Any, int]:
        # Writers need a 'w' open instance; cache one fd per path, upgrading
        # to 'w' when first needed.
        key = self._fd_key(path)
        fd = self._fds.get(key)
        if fd is not None:
            try:
                of = self.client.fds.get(fd)
                if mode == "r" or of.mode == "w":
                    return fd
                yield from self.client.close(fd)
            except KeyError:
                pass
            self._fds.pop(key, None)
        fd = yield from self.client.open_file(path, "w" if mode == "w" else "r")
        self._fds[key] = fd
        return fd


def run_workload(system: StorageTankSystem, duration: float,
                 paths: Optional[List[str]] = None,
                 cfg: Optional[WorkloadConfig] = None,
                 warmup: float = 0.0,
                 ) -> Dict[str, WorkloadStats]:
    """Populate files, attach one driver per client, run to completion.

    Convenience wrapper used by examples and benches; returns per-client
    stats.  The simulation is advanced internally.
    """
    sim = system.sim
    wcfg = cfg or system.config.workload
    created: Dict[str, Any] = {}

    def bootstrap() -> Generator[Event, Any, None]:
        ps = yield from populate_files(system, wcfg)
        created["paths"] = ps

    boot = system.spawn(bootstrap(), "populate")
    sim.run_until_event(boot, hard_limit=sim.now + 600)
    file_paths = paths or created["paths"]

    if warmup > 0:
        sim.run(until=sim.now + warmup)

    drivers = {name: WorkloadDriver(system, name, file_paths, wcfg)
               for name in system.pool.live_names()}
    procs = [system.spawn(d.run(duration), f"wl:{name}")
             for name, d in drivers.items()]
    for p in procs:
        sim.run_until_event(p, hard_limit=sim.now + duration * 20 + 600)
    return {name: d.stats for name, d in drivers.items()}
