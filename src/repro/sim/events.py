"""Event primitives for the discrete-event kernel.

Events are one-shot: they are *triggered* exactly once (either succeeded
with a value or failed with an exception) and then fire their callbacks
when the simulator pops them off the schedule.  Processes wait on events
by ``yield``-ing them; composite events (:class:`AnyOf`, :class:`AllOf`)
let a process wait on several conditions at once.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class SimulationError(RuntimeError):
    """Raised for misuse of the kernel (double-trigger, bad yields...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`repro.sim.process.Process.interrupt`.

    The interrupted process receives the interrupt at its current yield
    point and may catch it to clean up (the paper's clients use this to
    abort in-flight retries when a lease transitions phase).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event goes through three states: *pending* (just created),
    *triggered* (value/exception decided, scheduled on the heap) and
    *processed* (callbacks ran).  Waiting processes register callbacks.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_processed", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        # A failed event whose exception was delivered to some waiter is
        # "defused"; undefused failures surface when the event fires.
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event outcome has been decided."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value (or raises the failure exception)."""
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None."""
        return self._exc

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful and schedule it ``delay`` from now."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; waiters will see ``exc`` raised."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.sim._schedule(self, delay)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so the kernel does not re-raise it."""
        self._defused = True

    # -- kernel hook ---------------------------------------------------------
    def _fire(self) -> None:
        """Run callbacks.  Called exactly once by the simulator loop."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        assert callbacks is not None
        for cb in callbacks:
            cb(self)
        if self._exc is not None and not self._defused:
            raise self._exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule(self, delay)


class _Condition(Event):
    """Base for AnyOf/AllOf: waits on a set of events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
            if ev._processed:
                self._check(ev)
            else:
                assert ev.callbacks is not None
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev._processed and ev._exc is None}

    def _on_child_failure(self, event: Event) -> bool:
        if event._exc is not None:
            event.defuse()
            if not self._triggered:
                self.fail(event._exc)
            return True
        return False


class AnyOf(_Condition):
    """Succeeds as soon as any child event succeeds (fails on first failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._on_child_failure(event):
            return
        if not self._triggered:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Succeeds once every child event has succeeded."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._on_child_failure(event):
            return
        self._count += 1
        if self._count == len(self.events) and not self._triggered:
            self.succeed(self._collect())
