"""Event primitives for the discrete-event kernel.

Events are one-shot: they are *triggered* exactly once (either succeeded
with a value or failed with an exception) and then fire their callbacks
when the simulator pops them off the schedule.  Processes wait on events
by ``yield``-ing them; composite events (:class:`AnyOf`, :class:`AllOf`)
let a process wait on several conditions at once.

Hot-path design notes (the kernel is the floor under every experiment,
fuzz batch and benchmark):

- every event class uses ``__slots__``;
- the single-waiter case (one process blocked on one event — by far the
  common shape) bypasses the callbacks list entirely via the ``_waiter``
  slot, letting the run loop resume the process without allocating or
  iterating a list;
- :class:`Timeout` skips the generic ``__init__``/``_schedule`` call
  chain and pushes itself straight onto the schedule heap;
- :class:`FirstOf` is a lean n-ary race used by the transport retry
  loops in place of :class:`AnyOf` (no per-wait dict building).

None of this changes event *ordering*: the schedule key sequence and the
callback registration order are exactly what the pre-optimization kernel
produced, which is what keeps pinned trace hashes bit-identical.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

#: Added to the schedule-key sequence number for normal (non-priority)
#: events; priority events (interrupts) keep the bare sequence number so
#: they sort ahead of same-time normals.  Far above any realistic event
#: count, so keys never collide across the two bands.
NORMAL_BAND = 1 << 62


class SimulationError(RuntimeError):
    """Raised for misuse of the kernel (double-trigger, bad yields...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`repro.sim.process.Process.interrupt`.

    The interrupted process receives the interrupt at its current yield
    point and may catch it to clean up (the paper's clients use this to
    abort in-flight retries when a lease transitions phase).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event goes through three states: *pending* (just created),
    *triggered* (value/exception decided, scheduled on the heap) and
    *processed* (callbacks ran).  Waiting processes register callbacks —
    a single waiting process occupies the ``_waiter`` fast slot instead
    of the ``callbacks`` list.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered",
                 "_processed", "_defused", "_waiter")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        # A failed event whose exception was delivered to some waiter is
        # "defused"; undefused failures surface when the event fires.
        self._defused = False
        self._waiter: Optional[Callable[["Event"], None]] = None

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event outcome has been decided."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value (or raises the failure exception)."""
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None."""
        return self._exc

    # -- waiter registration (kernel internal) ----------------------------
    def _add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register a fire callback, filling the single-waiter fast slot
        when this event has no registrants yet (preserves registration
        order: the waiter slot always fires before the callbacks list)."""
        cbs = self.callbacks
        if self._waiter is None and not cbs:
            self._waiter = cb
        elif cbs is None:
            self.callbacks = [cb]
        else:
            cbs.append(cb)

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful and schedule it ``delay`` from now."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; waiters will see ``exc`` raised."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.sim._schedule(self, delay)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so the kernel does not re-raise it."""
        self._defused = True

    # -- kernel hook ---------------------------------------------------------
    def _fire(self) -> None:
        """Run the waiter and callbacks.  Called once by the simulator loop."""
        self._processed = True
        waiter, self._waiter = self._waiter, None
        callbacks, self.callbacks = self.callbacks, None
        if waiter is not None:
            waiter(self)
        if callbacks:
            for cb in callbacks:
                cb(self)
        exc = self._exc
        if exc is not None and not self._defused:
            raise exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds ``delay`` simulated seconds after creation.

    Construction is the kernel's hottest allocation site, so it writes
    every slot directly and pushes itself onto the schedule heap without
    going through ``Event.__init__``/``Simulator._schedule``.  The
    callbacks list stays ``None`` until a second registrant appears.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        self.sim = sim
        self.callbacks = None
        self._value = value
        self._exc = None
        self._triggered = True
        self._processed = False
        self._defused = False
        self._waiter = None
        self.delay = delay
        seq = sim._seq + 1
        sim._seq = seq
        heappush(sim._heap, (sim._now + delay, NORMAL_BAND + seq, self))


class _Condition(Event):
    """Base for AnyOf/AllOf: waits on a set of events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        check = self._check
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
            if ev._processed:
                check(ev)
            else:
                ev._add_callback(check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev._processed and ev._exc is None}

    def _on_child_failure(self, event: Event) -> bool:
        if event._exc is not None:
            event.defuse()
            if not self._triggered:
                self.fail(event._exc)
            return True
        return False


class AnyOf(_Condition):
    """Succeeds as soon as any child event succeeds (fails on first failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._on_child_failure(event):
            return
        if not self._triggered:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Succeeds once every child event has succeeded."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._on_child_failure(event):
            return
        self._count += 1
        if self._count == len(self.events) and not self._triggered:
            self.succeed(self._collect())


class FirstOf(Event):
    """Race: succeeds with the first child event that fires (the *winner*
    event itself is the value), fails with the first child failure.

    The transport's retry loops used to build an :class:`AnyOf` plus a
    result dict per attempt; this races the same children with no list,
    no dict and no per-child bound-method allocation.  Children are
    checked in argument order, so when several are already processed the
    earliest argument wins — the same precedence the old membership
    checks (``reply_ev in outcome``) applied.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        self.sim = sim
        self.callbacks = None
        self._value = None
        self._exc = None
        self._triggered = False
        self._processed = False
        self._defused = False
        self._waiter = None
        check = self._check
        for ev in events:
            if ev.sim is not sim:
                raise SimulationError("race mixes events from different simulators")
            if ev._processed:
                check(ev)
            else:
                ev._add_callback(check)

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        exc = event._exc
        if exc is not None:
            event.defuse()
            self.fail(exc)
            return
        self._triggered = True
        self._value = event
        self.sim._schedule(self, 0.0)
