"""The simulator event loop.

Deterministic: the schedule is a heap keyed by ``(time, key)`` where
``key`` encodes priority band and insertion sequence, so same-time
events fire in insertion order regardless of hashing or interning.  All
randomness in a simulation flows through
:class:`repro.sim.rng.RandomStreams`, so a run is fully reproducible
from its seed.

Hot-path design notes: heap entries are 3-tuples ``(time, key, event)``
— the old ``(time, priority, seq, event)`` 4-tuple folded its middle
two fields into a single int (priority events keep the bare sequence
number, normal events add :data:`repro.sim.events.NORMAL_BAND`), which
both shrinks the tuple and cuts a comparison level in the heap.
:meth:`Simulator.run` with no bounds (the overwhelmingly common call)
uses a closure-free tight loop with bound-local ``heappop`` and an
inline single-waiter dispatch that skips the generic
:meth:`Event._fire` machinery.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Iterable, List, Optional, Tuple

from repro.sim.events import (NORMAL_BAND, AllOf, AnyOf, Event, FirstOf,
                              SimulationError, Timeout)
from repro.sim.process import Process, ProcessGenerator


class Simulator:
    """Discrete-event simulator with a float timeline in seconds."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- time ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (global/"true" time) in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def events_scheduled(self) -> int:
        """Total events ever pushed onto the kernel heap (monotonic)."""
        return self._seq

    @property
    def pending_events(self) -> int:
        """Entries currently on the kernel heap (including stale ones)."""
        return len(self._heap)

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Spawn a generator as a process; returns the process event."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event firing when any child succeeds."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event firing when all children succeed."""
        return AllOf(self, list(events))

    def first_of(self, events: Iterable[Event]) -> FirstOf:
        """Race event whose value is the first child event to fire."""
        return FirstOf(self, list(events))

    # -- scheduling (kernel internal) ------------------------------------
    def _schedule(self, event: Event, delay: float, priority: bool = False) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq = seq = self._seq + 1
        # priority events (interrupts) sort ahead of same-time normals
        heappush(self._heap, (self._now + delay, seq if priority else NORMAL_BAND + seq, event))

    # -- main loop -----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Pop and fire exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        t, _key, event = heappop(self._heap)
        if t < self._now:
            raise SimulationError("schedule corruption: time went backwards")
        self._now = t
        event._fire()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the loop until the schedule drains or ``until`` is reached.

        Returns the simulation time when the loop stopped.  ``max_events``
        is a safety valve for runaway simulations.
        """
        if until is None and max_events is None:
            # Tight unbounded loop: bound locals, inline single-waiter
            # dispatch (equivalent to Event._fire with one registrant and
            # no failure — the dominant case by far).
            heap = self._heap
            pop = heappop
            while heap:
                t, _key, event = pop(heap)
                self._now = t
                waiter = event._waiter
                if waiter is not None and event._exc is None and not event.callbacks:
                    event._waiter = None
                    event.callbacks = None
                    event._processed = True
                    waiter(event)
                else:
                    event._fire()
            return self._now

        count = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                break
            if max_events is not None and count >= max_events:
                raise SimulationError(f"run() exceeded max_events={max_events}")
            self.step()
            count += 1
        else:
            if until is not None and until > self._now:
                self._now = until
        return self._now

    def run_until_event(self, event: Event, hard_limit: float = float("inf")) -> Any:
        """Run until ``event`` has fired; returns its value."""
        while not event.processed:
            if not self._heap:
                raise SimulationError("schedule drained before awaited event fired")
            if self._heap[0][0] > hard_limit:
                raise SimulationError(f"awaited event did not fire by t={hard_limit}")
            self.step()
        return event.value
