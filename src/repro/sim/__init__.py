"""Deterministic discrete-event simulation kernel.

A small SimPy-flavoured kernel: generator-based processes scheduled on a
binary heap keyed by ``(time, sequence)`` so identical-time events fire in
a deterministic creation order.  On top of the kernel sit per-node
rate-skewed :class:`~repro.sim.clock.LocalClock` instances (the paper's
rate-synchronization model, §3), seeded random-stream management and a
structured trace recorder.
"""

from repro.sim.events import AllOf, AnyOf, Event, Interrupt, SimulationError, Timeout
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.clock import ClockEnsemble, LocalClock
from repro.sim.rng import RandomStreams
from repro.sim.timer_pool import TimerPool
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "AllOf",
    "AnyOf",
    "ClockEnsemble",
    "Event",
    "Interrupt",
    "LocalClock",
    "Process",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "Timeout",
    "TimerPool",
    "TraceRecord",
    "TraceRecorder",
]
