"""Generator-based simulation processes.

A process wraps a Python generator that ``yield``-s :class:`Event`
instances.  The process resumes when the yielded event fires, receiving
the event's value (or its exception raised at the yield point).  A
process is itself an event that triggers when the generator returns, so
processes can wait on each other.

Hot-path design notes: the resume callback is bound once per process
(``_resume_cb``) rather than materialized on every yield, bootstrap and
interrupt events are built by direct slot writes, and registration goes
through :meth:`Event._add_callback` so a lone waiting process sits in
the event's ``_waiter`` fast slot.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, TYPE_CHECKING

from repro.sim.events import Event, Interrupt, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running coroutine on the simulation timeline.

    Triggered (as an event) with the generator's return value when it
    finishes, or failed with its uncaught exception.
    """

    __slots__ = ("gen", "name", "_target", "_alive", "_resume_cb")

    def __init__(self, sim: "Simulator", gen: ProcessGenerator, name: Optional[str] = None) -> None:
        super().__init__(sim)
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        self._alive = True
        self._resume_cb: Callable[[Event], None] = self._resume
        # Bootstrap: resume once the init event fires.
        init = Event.__new__(Event)
        init.sim = sim
        init.callbacks = None
        init._value = None
        init._exc = None
        init._triggered = True
        init._processed = False
        init._defused = False
        init._waiter = self._resume_cb
        sim._schedule(init, 0.0)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._alive

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a dead process is an error.  The process is detached
        from whatever event it was waiting on; that event may still fire
        later and is then ignored.
        """
        if not self._alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        ev = Event.__new__(Event)
        ev.sim = self.sim
        ev.callbacks = None
        ev._value = None
        ev._exc = Interrupt(cause)
        ev._triggered = True
        ev._processed = False
        ev._defused = True
        ev._waiter = self._resume_cb
        self.sim._schedule(ev, 0.0, priority=True)

    # -- resumption ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if not self._alive:
            return
        exc = event._exc
        if exc is not None and isinstance(exc, Interrupt):
            # Detach from the current wait target; its later firing must
            # not resume this process a second time.
            tgt = self._target
            if tgt is not None:
                cb = self._resume_cb
                if tgt._waiter is cb:
                    tgt._waiter = None
                elif tgt.callbacks is not None and cb in tgt.callbacks:
                    tgt.callbacks.remove(cb)
        elif self._target is not None and event is not self._target:
            return  # stale wake-up from a pre-interrupt target
        self._target = None

        sim = self.sim
        sim._active_process = self
        try:
            if exc is not None:
                # Delivering the exception to this process counts as
                # handling it at the kernel level.
                event._defused = True
                nxt = self.gen.throw(exc)
            else:
                nxt = self.gen.send(event._value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except Interrupt as interrupt_exc:
            # An uncaught interrupt terminates the process quietly: the
            # interruptor asked for exactly this.
            self._alive = False
            self._triggered = True
            self._exc = interrupt_exc
            self._defused = True
            sim._schedule(self, 0.0)
            return
        except BaseException as fail_exc:
            self._alive = False
            self.fail(fail_exc)
            return
        finally:
            sim._active_process = None

        if not isinstance(nxt, Event) or nxt.sim is not sim:
            self._alive = False
            self.fail(SimulationError(f"process {self.name!r} yielded invalid target {nxt!r}"))
            return

        if nxt._processed:
            # The target already fired; resume via a proxy on the next round.
            proxy = Event.__new__(Event)
            proxy.sim = sim
            proxy.callbacks = None
            proxy._triggered = True
            proxy._processed = False
            proxy._value = nxt._value
            proxy._exc = nxt._exc
            proxy._defused = False
            if nxt._exc is not None:
                nxt._defused = True
                proxy._defused = True
            proxy._waiter = self._resume_cb
            self._target = proxy
            sim._schedule(proxy, 0.0)
        else:
            if nxt._exc is not None:
                nxt._defused = True
            self._target = nxt
            nxt._add_callback(self._resume_cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'alive' if self._alive else 'dead'}>"
