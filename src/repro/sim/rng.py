"""Seeded, named random streams.

Every source of randomness in a simulation (network delay, workload
inter-arrival, clock skew, fault schedule...) draws from its own named
stream derived from a single root seed via ``numpy.random.SeedSequence``
spawning.  Adding a new consumer therefore never perturbs the draws of
existing ones — a requirement for comparable A/B runs between protocols.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RandomStreams:
    """Lazily-created named ``numpy`` generators from one root seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created deterministically on first use."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive child entropy from the root seed and the stream name so
            # creation *order* does not matter, only the name.
            digest = np.frombuffer(name.encode("utf-8").ljust(8, b"\0")[:8], dtype=np.uint64)
            child = np.random.SeedSequence(entropy=self._root.entropy,
                                           spawn_key=(int(digest[0]) & 0x7FFFFFFF, _stable_hash(name)))
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RandomStreams":
        """A new independent stream family (e.g. per experiment repetition)."""
        return RandomStreams(seed=(self.seed * 1_000_003 + salt) & 0x7FFFFFFF)


def _stable_hash(name: str) -> int:
    """FNV-1a over the name — stable across processes (unlike ``hash``)."""
    h = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h & 0x7FFFFFFF
