"""Pooled timers: many logical deadlines behind O(1) kernel heap entries.

The kernel heap is priced per entry: a million sleeping clients that
each keep a private :class:`~repro.sim.events.Timeout` armed (lease
renewal, retry backoff, writeback period) cost a million heap tuples and
a million event objects even though almost none of them will fire before
being rescheduled.  A :class:`TimerPool` coalesces any number of logical
deadlines into *one* armed kernel timeout — the one for the earliest
deadline — and re-arms itself as deadlines fire, are cancelled, or an
earlier one arrives.

Design notes:

- Logical deadlines live in a plain Python heap of ``(when, token)``
  pairs plus a token -> callback dict.  Cancellation is *lazy*: the heap
  entry stays behind and is discarded when popped (the standard
  lazy-deletion idiom), so ``cancel`` is O(1).
- The pool arms at most one kernel :class:`~repro.sim.events.Timeout`
  for its current earliest deadline.  Inserting an earlier deadline
  arms a fresh timeout; the superseded one fires later as a no-op
  drain.  Stale arms are therefore bounded by the number of
  "new-earliest" insertions, not by the number of logical timers.
- Firing drains *every* due entry in deadline order, then re-arms once.
  A thousand clients whose leases lapse in the same instant cost one
  kernel event, not a thousand.

Callbacks run inside the kernel's event dispatch, exactly like an
ordinary timeout waiter: they must not block, and anything they
schedule lands after the current instant's already-queued events.

The pool is deliberately *not* used by the default (eager) system
build: existing configurations must keep bit-identical trace hashes,
and pooling changes kernel event counts.  It is the timer substrate for
the opt-in scale path (``ScaleConfig.lazy_clients``).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, List, Tuple

from repro.sim.events import Event, Timeout
from repro.sim.kernel import Simulator

__all__ = ["TimerPool"]

_INF = float("inf")


class TimerPool:
    """Coalesce many logical deadlines into one armed kernel timeout.

    ``at``/``after`` register a zero-argument callback for a deadline
    and return an integer token; ``cancel(token)`` forgets it in O(1).
    However many entries are pending, the pool keeps at most one live
    kernel timeout armed (plus already-superseded stale ones, which
    drain as no-ops).
    """

    def __init__(self, sim: Simulator, name: str = "timer-pool") -> None:
        self.sim = sim
        self.name = name
        self._heap: List[Tuple[float, int]] = []
        self._entries: Dict[int, Callable[[], None]] = {}
        self._next_token = 0
        #: earliest deadline a kernel timeout is currently armed for
        self._armed_for = _INF
        #: true while _on_fire drains (defers re-arming to drain end)
        self._draining = False
        #: counters for observability / tests
        self.fired = 0
        self.cancelled = 0
        self.kernel_arms = 0

    # -- registration -----------------------------------------------------
    def at(self, when: float, fn: Callable[[], None]) -> int:
        """Register ``fn`` to run at absolute sim time ``when``.

        A deadline in the past runs at the current instant (delay 0).
        Returns a token for :meth:`cancel`.
        """
        self._next_token += 1
        token = self._next_token
        self._entries[token] = fn
        heappush(self._heap, (when, token))
        if when < self._armed_for and not self._draining:
            self._arm(when)
        return token

    def after(self, delay: float, fn: Callable[[], None]) -> int:
        """Register ``fn`` to run ``delay`` seconds from now."""
        return self.at(self.sim.now + delay, fn)

    def cancel(self, token: int) -> bool:
        """Forget a pending entry; returns False if it already fired
        (or was already cancelled).  O(1): the heap entry is discarded
        lazily when it surfaces."""
        if self._entries.pop(token, None) is None:
            return False
        self.cancelled += 1
        return True

    # -- inspection -------------------------------------------------------
    def __len__(self) -> int:
        """Number of pending (not yet fired or cancelled) entries."""
        return len(self._entries)

    def next_deadline(self) -> float:
        """Earliest pending deadline, or +inf when the pool is empty."""
        heap = self._heap
        entries = self._entries
        while heap and heap[0][1] not in entries:
            heappop(heap)
        return heap[0][0] if heap else _INF

    # -- kernel coupling --------------------------------------------------
    def _arm(self, when: float) -> None:
        """Arm one kernel timeout for deadline ``when``."""
        self._armed_for = when
        self.kernel_arms += 1
        delay = when - self.sim.now
        if delay < 0.0:
            delay = 0.0
        Timeout(self.sim, delay)._add_callback(self._on_fire)

    def _on_fire(self, _event: Event) -> None:
        """Drain every due entry in deadline order, then re-arm once.

        Stale arms (superseded by an earlier insertion, or whose entries
        were all cancelled) take this same path and simply drain
        nothing.
        """
        self._armed_for = _INF
        self._draining = True
        try:
            now = self.sim.now
            heap = self._heap
            entries = self._entries
            while heap and heap[0][0] <= now:
                _, token = heappop(heap)
                fn = entries.pop(token, None)
                if fn is None:
                    continue  # lazily-cancelled entry
                self.fired += 1
                fn()
        finally:
            self._draining = False
        nxt = self.next_deadline()
        if nxt < _INF:
            self._arm(nxt)
