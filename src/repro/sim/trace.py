"""Structured event tracing.

Simulation components emit :class:`TraceRecord`-s (message sends, lease
phase transitions, fences, lock steals...).  The trace is the ground
truth consumed by the offline consistency audit and by the experiment
harness, so records are plain data and cheap to filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    ``kind`` is a dotted category such as ``"msg.send"``, ``"lease.phase"``,
    ``"lock.steal"``, ``"disk.write"``; ``node`` the emitting component;
    ``detail`` free-form keyed data.
    """

    time: float
    kind: str
    node: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into ``detail``."""
        return self.detail.get(key, default)


class TraceRecorder:
    """Append-only trace with cheap filtered views and counters."""

    def __init__(self, enabled: bool = True, keep_kinds: Optional[List[str]] = None) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self._counts: Dict[str, int] = {}
        self._keep_prefixes = tuple(keep_kinds) if keep_kinds else None
        self._subscribers: List[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, kind: str, node: str, **detail: Any) -> None:
        """Record one occurrence (counters always update, storage may filter)."""
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if not self.enabled:
            return
        if self._keep_prefixes is not None and not kind.startswith(self._keep_prefixes):
            return
        rec = TraceRecord(time=time, kind=kind, node=node, detail=detail)
        self._records.append(rec)
        for sub in self._subscribers:
            sub(rec)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Invoke ``fn`` on every stored record as it is emitted."""
        self._subscribers.append(fn)

    # -- queries --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        """All stored records in emission order."""
        return list(self._records)

    def count(self, kind: str) -> int:
        """Exact count of a kind (counted even when storage is filtered)."""
        return self._counts.get(kind, 0)

    def count_prefix(self, prefix: str) -> int:
        """Sum of counts over all kinds with the given dotted prefix."""
        return sum(c for k, c in self._counts.items() if k.startswith(prefix))

    def select(self, kind: Optional[str] = None, node: Optional[str] = None,
               prefix: Optional[str] = None) -> List[TraceRecord]:
        """Stored records matching the given filters."""
        out = []
        for r in self._records:
            if kind is not None and r.kind != kind:
                continue
            if prefix is not None and not r.kind.startswith(prefix):
                continue
            if node is not None and r.node != node:
                continue
            out.append(r)
        return out

    def kinds(self) -> Dict[str, int]:
        """Mapping of every seen kind to its count."""
        return dict(self._counts)

    def clear(self) -> None:
        """Drop stored records and counters."""
        self._records.clear()
        self._counts.clear()
