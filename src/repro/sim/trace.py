"""Structured event tracing.

Simulation components emit :class:`TraceRecord`-s (message sends, lease
phase transitions, fences, lock steals...).  The trace is the ground
truth consumed by the offline consistency audit and by the experiment
harness, so records are plain data and cheap to filter.

Cost model (the recorder sits on every message/IO hot path):

- ``counting=False, enabled=False`` makes the recorder a true no-op;
  the precomputed ``_noop`` flag lets hot callsites skip even the
  keyword-argument packing of :meth:`TraceRecorder.emit`;
- ``max_records`` bounds storage with a ring buffer (oldest evicted),
  for long soak runs that only need the recent window;
- ``sample_stride=N`` stores every Nth record (counters stay exact);
- stored records are indexed by kind so :meth:`select` with a ``kind``
  filter does not scan the whole trace.

Counters always update while ``counting`` is on, even when storage is
disabled or sampled — oracle and experiment code relies on exact counts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Union


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence.

    ``kind`` is a dotted category such as ``"msg.send"``, ``"lease.phase"``,
    ``"lock.steal"``, ``"disk.write"``; ``node`` the emitting component;
    ``detail`` free-form keyed data.
    """

    time: float
    kind: str
    node: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into ``detail``."""
        return self.detail.get(key, default)


class TraceRecorder:
    """Append-only trace with cheap filtered views and counters."""

    def __init__(self, enabled: bool = True,
                 keep_kinds: Optional[List[str]] = None,
                 counting: bool = True,
                 max_records: Optional[int] = None,
                 sample_stride: int = 1) -> None:
        if sample_stride < 1:
            raise ValueError(f"sample_stride must be >= 1, got {sample_stride}")
        self.enabled = enabled
        self.counting = counting
        self.max_records = max_records
        self.sample_stride = sample_stride
        self._records: Union[List[TraceRecord], Deque[TraceRecord]] = (
            deque(maxlen=max_records) if max_records is not None else [])
        self._counts: Dict[str, int] = {}
        self._keep_prefixes = tuple(keep_kinds) if keep_kinds else None
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        # Kind index for select(); only maintained for unbounded storage
        # (ring-buffer eviction would leave stale index entries).
        self._by_kind: Optional[Dict[str, List[TraceRecord]]] = (
            {} if max_records is None else None)
        self._stride_seq = 0
        # True when emit() can return without doing any work at all;
        # hot callsites read this to skip kwargs packing entirely.
        self._noop = not enabled and not counting

    def emit(self, time: float, kind: str, node: str, **detail: Any) -> None:
        """Record one occurrence (counters always update, storage may filter)."""
        if self._noop:
            return
        if self.counting:
            counts = self._counts
            counts[kind] = counts.get(kind, 0) + 1
        if not self.enabled:
            return
        if self._keep_prefixes is not None and not kind.startswith(self._keep_prefixes):
            return
        if self.sample_stride > 1:
            self._stride_seq += 1
            if self._stride_seq % self.sample_stride:
                return
        rec = TraceRecord(time=time, kind=kind, node=node, detail=detail)
        self._records.append(rec)
        by_kind = self._by_kind
        if by_kind is not None:
            bucket = by_kind.get(kind)
            if bucket is None:
                by_kind[kind] = [rec]
            else:
                bucket.append(rec)
        for sub in self._subscribers:
            sub(rec)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Invoke ``fn`` on every stored record as it is emitted."""
        self._subscribers.append(fn)

    # -- queries --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        """All stored records in emission order."""
        return list(self._records)

    def count(self, kind: str) -> int:
        """Exact count of a kind (counted even when storage is filtered)."""
        return self._counts.get(kind, 0)

    def count_prefix(self, prefix: str) -> int:
        """Sum of counts over all kinds with the given dotted prefix."""
        return sum(c for k, c in self._counts.items() if k.startswith(prefix))

    def select(self, kind: Optional[str] = None, node: Optional[str] = None,
               prefix: Optional[str] = None) -> List[TraceRecord]:
        """Stored records matching the given filters."""
        pool: Union[List[TraceRecord], Deque[TraceRecord]]
        if kind is not None and self._by_kind is not None:
            pool = self._by_kind.get(kind, [])
            kind = None  # already applied via the index
        else:
            pool = self._records
        out = []
        for r in pool:
            if kind is not None and r.kind != kind:
                continue
            if prefix is not None and not r.kind.startswith(prefix):
                continue
            if node is not None and r.node != node:
                continue
            out.append(r)
        return out

    def kinds(self) -> Dict[str, int]:
        """Mapping of every seen kind to its count."""
        return dict(self._counts)

    def clear(self) -> None:
        """Drop stored records and counters."""
        self._records.clear()
        self._counts.clear()
        if self._by_kind is not None:
            self._by_kind.clear()
        self._stride_seq = 0
