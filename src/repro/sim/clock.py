"""Rate-skewed local clocks (paper §3).

The protocol requires clocks that are *rate synchronized* with a known
error bound ε: an interval of length ``t`` measured on one computer's
clock has length within ``(t/(1+ε), t·(1+ε))`` measured on another's.
It does **not** require absolute or relative time synchronization.

We model each node with a :class:`LocalClock` that maps global ("true")
simulation time to the node's local time via a constant rate and offset:
``local = offset + rate * global``.  A :class:`ClockEnsemble` draws rates
so that every *pairwise ratio* is strictly within the bound, i.e.
``max_rate / min_rate <= 1 + ε`` (rates land in
``[1/sqrt(1+ε), sqrt(1+ε)]``).  Offsets are arbitrary — the protocol
never compares absolute local times across machines.

A clock can also be created *out of bound* (``violates_bound=True``) to
model the paper's §6 "slow computer" failure mode, where the lease
protocol alone is insufficient and fencing is required.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    import numpy as np

from repro.sim.rng import RandomStreams


@dataclass
class LocalClock:
    """Affine map from global simulation time to a node's local time.

    ``rate`` is local-seconds per global-second; a slow computer has
    ``rate < 1`` (its timers take longer in global time than intended).
    """

    name: str
    rate: float = 1.0
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"clock rate must be positive, got {self.rate}")

    def local_time(self, global_time: float) -> float:
        """Local reading at the given global instant."""
        return self.offset + self.rate * global_time

    def global_time(self, local_time: float) -> float:
        """Global instant at which the clock reads ``local_time``."""
        return (local_time - self.offset) / self.rate

    def to_global_interval(self, local_interval: float) -> float:
        """Global duration of a timer set for ``local_interval`` local seconds."""
        if local_interval < 0:
            raise ValueError("negative interval")
        return local_interval / self.rate

    def to_local_interval(self, global_interval: float) -> float:
        """Local-clock length of a global duration."""
        if global_interval < 0:
            raise ValueError("negative interval")
        return global_interval * self.rate

    def ratio_bound_with(self, other: "LocalClock") -> float:
        """Smallest ε such that this pair is rate-synchronized within ε."""
        hi = max(self.rate, other.rate)
        lo = min(self.rate, other.rate)
        return hi / lo - 1.0


class ClockEnsemble:
    """Factory for a set of clocks that jointly respect a rate bound ε.

    Parameters
    ----------
    epsilon:
        The pairwise rate-synchronization bound from the lease contract.
    streams:
        Seeded random streams; clock rates/offsets draw from the
        ``"clock"`` stream so runs are reproducible.
    max_offset:
        Magnitude bound for the arbitrary per-node offsets.
    """

    def __init__(self, epsilon: float, streams: Optional[RandomStreams] = None,
                 max_offset: float = 1000.0) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        self.epsilon = epsilon
        self._streams = streams
        self._max_offset = max_offset
        self._clocks: Dict[str, LocalClock] = {}

    @property
    def clocks(self) -> Dict[str, LocalClock]:
        """All clocks created so far, by node name."""
        return dict(self._clocks)

    def _rng(self) -> "np.random.Generator":
        if self._streams is None:
            raise ValueError("ClockEnsemble needs RandomStreams for random clocks")
        return self._streams.get("clock")

    def create(self, name: str, rate: Optional[float] = None,
               offset: Optional[float] = None,
               violates_bound: bool = False) -> LocalClock:
        """Create (and register) the clock for node ``name``.

        Without an explicit ``rate``, one is drawn uniformly in
        ``[1/sqrt(1+ε), sqrt(1+ε)]`` so that any pair of in-bound clocks
        satisfies the ε contract.  ``violates_bound=True`` instead draws a
        pathologically slow rate below the bound (§6 slow computer).
        """
        if name in self._clocks:
            raise ValueError(f"duplicate clock for node {name!r}")
        if rate is None:
            lo = 1.0 / math.sqrt(1.0 + self.epsilon)
            hi = math.sqrt(1.0 + self.epsilon)
            if violates_bound:
                # Distinctly slower than the contract permits.
                rng = self._rng()
                rate = lo / (2.0 + rng.random() * 2.0)
            elif self.epsilon == 0.0:
                rate = 1.0
            else:
                rng = self._rng()
                rate = lo + rng.random() * (hi - lo)
        if offset is None:
            if self._streams is None:
                offset = 0.0
            else:
                offset = (self._rng().random() * 2.0 - 1.0) * self._max_offset
        clock = LocalClock(name=name, rate=rate, offset=offset)
        self._clocks[name] = clock
        return clock

    def get_or_create(self, name: str, rate: Optional[float] = None,
                      offset: Optional[float] = None,
                      violates_bound: bool = False) -> LocalClock:
        """The registered clock for ``name``, creating it on first use.

        A node's clock is a physical fact: re-materializing a parked
        flyweight client must see the *same* rate and offset its first
        incarnation drew, so the scale path resolves clocks through
        this instead of :meth:`create`.
        """
        clock = self._clocks.get(name)
        if clock is not None:
            return clock
        return self.create(name, rate=rate, offset=offset,
                           violates_bound=violates_bound)

    def verify_bound(self, names: Optional[List[str]] = None,
                     include_violators: bool = False) -> bool:
        """Check every registered pair is within ε.

        By construction in-bound clocks pass; this is used by tests and
        by the §6 experiment to confirm which node breaks the contract.
        """
        clocks = [self._clocks[n] for n in (names or self._clocks)]
        for i, a in enumerate(clocks):
            for b in clocks[i + 1:]:
                if a.ratio_bound_with(b) > self.epsilon + 1e-12:
                    if not include_violators:
                        return False
        return True

    def worst_pair_epsilon(self) -> float:
        """The largest pairwise ε among registered clocks."""
        clocks = list(self._clocks.values())
        worst = 0.0
        for i, a in enumerate(clocks):
            for b in clocks[i + 1:]:
                worst = max(worst, a.ratio_bound_with(b))
        return worst
