"""Execute one schedule against a full system under the oracle library.

The runner is the bridge between a plain-data :class:`Schedule` and a
verdict: build the system from the schedule's seed, optionally sabotage
it (``break_mode`` — used to prove the oracles actually catch broken
protocol implementations), bootstrap the shared file set, let the fault
injector and per-client workload drivers loose, poll the live oracles
while the run is in flight, settle, and run the final oracles.

Every run also produces a *canonical trace hash*: sha256 over a
normalized rendering of the event trace (module-global message ids are
dropped — they are the one counter that survives across runs in the
same process).  Two runs of the same schedule hash identically, which
is what seed-corpus replay in CI asserts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.core.system import StorageTankSystem, build_system
from repro.fault.adversary import BYZANTINE_KINDS
from repro.fault.injector import FaultInjector
from repro.sim.events import Event
from repro.simtest.oracles import Oracle, OracleViolation, default_oracles
from repro.simtest.schedule import Schedule
from repro.workloads.generator import WorkloadDriver, populate_files

#: Detail keys excluded from the canonical trace (process-global counters).
_NONCANONICAL_KEYS = frozenset({"msg_id"})

#: How often (global seconds) the live oracles inspect system state.
LIVE_CHECK_INTERVAL = 0.5

#: Extra run time after the last horizon second, in lease intervals —
#: room for expiries, steals and the post-heal writeback to play out.
SETTLE_LEASES = 1.5


def _noop() -> None:
    return None


def _break_skip_flush(system: StorageTankSystem) -> None:
    """Sabotage: clients never perform the expected-failure flush (and
    their background writeback is effectively disabled so it cannot
    mask the missing phase-4 flush)."""
    for client in system.pool.iter_active():
        leases = getattr(client, "leases", None)
        if leases is None:
            continue
        for manager in leases.values():
            manager.callbacks.on_enter_flush = _noop
        client.config.writeback_interval = 1e9


def _break_ack_expiring(system: StorageTankSystem) -> None:
    """Sabotage: the server ACKs clients it is timing out (the E4
    ablation), renewing leases it is about to steal from under."""
    for srv in _servers(system).values():
        authority = getattr(srv, "authority", None)
        if authority is not None:
            authority.ack_while_expiring = True


def _break_steal_early(system: StorageTankSystem) -> None:
    """Sabotage: the server's suspect timer waits a fraction of τ
    instead of τ(1+ε), stealing locks while the victim's lease is
    still provably valid (breaks Theorem 3.1)."""
    from dataclasses import replace
    for srv in _servers(system).values():
        authority = getattr(srv, "authority", None)
        if authority is not None:
            authority.contract = replace(authority.contract,
                                         tau=authority.contract.tau * 0.3,
                                         epsilon=0.0)


def _break_blind_unfence(system: StorageTankSystem) -> None:
    """Sabotage: the server unfences any fenced client on its next RPC
    without requiring a lapse attestation — the pre-fix rejoin hole
    (an ignore-expiry client that never quiesced walks right back in)."""
    for srv in _servers(system).values():
        if hasattr(srv, "_attested_since_fence"):
            setattr(srv, "_attested_since_fence", lambda client: True)


def _break_blind_reassert(system: StorageTankSystem) -> None:
    """Sabotage: the server grants any non-conflicting LOCK_REASSERT
    without checking fencing or theft evidence — the pre-fix
    stale-capability replay hole."""
    for srv in _servers(system).values():
        recovery = getattr(srv, "recovery", None)
        if recovery is not None and hasattr(recovery, "_reassert_allowed"):
            setattr(recovery, "_reassert_allowed",
                    lambda client, obj: True)


def _break_no_demand_escalate(system: StorageTankSystem) -> None:
    """Sabotage: the server never escalates a perpetually-ACKing,
    never-complying lock holder to suspect, so a suppress_release
    adversary starves honest waiters forever."""
    for srv in _servers(system).values():
        config = getattr(srv, "config", None)
        if config is not None and hasattr(config, "demand_escalate_rounds"):
            config.demand_escalate_rounds = 0


#: Registry of deliberate protocol breaks, for oracle/shrinker testing.
BREAK_MODES: Dict[str, Callable[[StorageTankSystem], None]] = {
    "skip_flush": _break_skip_flush,
    "ack_expiring": _break_ack_expiring,
    "steal_early": _break_steal_early,
    "blind_unfence": _break_blind_unfence,
    "blind_reassert": _break_blind_reassert,
    "no_demand_escalate": _break_no_demand_escalate,
}


def _is_adversarial(schedule: Schedule) -> bool:
    """Whether the schedule possesses any client (generated or crafted)."""
    return (schedule.adversaries > 0
            or any(step.kind in BYZANTINE_KINDS for step in schedule.steps))


def _enable_adversarial_defenses(system: StorageTankSystem) -> None:
    """Arm the containment behaviors that are off for fail-stop runs.

    Chain demands (pump-regrant starvation fix) change the RPC trace of
    honest runs, so they are gated off by default to keep the blessed
    fail-stop corpus replayable; any schedule with a Byzantine step gets
    them, since a never-releasing holder makes the starvation unbounded.
    """
    for srv in _servers(system).values():
        config = getattr(srv, "config", None)
        if config is not None and hasattr(config, "demand_chain"):
            config.demand_chain = True


def _servers(system: StorageTankSystem) -> Dict[str, Any]:
    servers = getattr(system, "servers", None)
    if servers:
        return dict(servers)
    return {system.server.name: system.server}


def apply_break_mode(system: StorageTankSystem, break_mode: str) -> None:
    """Apply a registered sabotage to a freshly built system."""
    if not break_mode:
        return
    fn = BREAK_MODES.get(break_mode)
    if fn is None:
        raise ValueError(f"unknown break mode {break_mode!r}; "
                         f"known: {sorted(BREAK_MODES)}")
    fn(system)


def trace_lines(system: StorageTankSystem) -> List[str]:
    """The canonical, hashable rendering of a finished run's trace."""
    lines = []
    for rec in system.trace.records:
        detail = " ".join(
            f"{k}={rec.detail[k]!r}" for k in sorted(rec.detail)
            if k not in _NONCANONICAL_KEYS)
        lines.append(f"{rec.time:.9f} {rec.kind} {rec.node} {detail}")
    return lines


def trace_hash(system: StorageTankSystem) -> str:
    """sha256 of the canonical trace rendering."""
    digest = hashlib.sha256()
    for line in trace_lines(system):
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class SimRunResult:
    """Everything one schedule execution produced."""

    schedule: Schedule
    violations: List[OracleViolation] = field(default_factory=list)
    trace_hash: str = ""
    ops_succeeded: int = 0
    system: Optional[StorageTankSystem] = None

    @property
    def ok(self) -> bool:
        """True when every oracle stayed silent."""
        return not self.violations

    def oracle_names(self) -> List[str]:
        """Sorted names of the oracles that fired."""
        return sorted({v.oracle for v in self.violations})


def run_schedule(schedule: Schedule,
                 oracles: Optional[List[Oracle]] = None,
                 keep_system: bool = False) -> SimRunResult:
    """Run one schedule to completion and return its verdict.

    Deterministic: the schedule (plus the oracle list, which draws no
    randomness) fully determines the run, so calling this twice with
    equal schedules yields identical violations and trace hashes.
    """
    oracle_list = oracles if oracles is not None else default_oracles()
    system = build_system(schedule.system_config())
    apply_break_mode(system, schedule.break_mode)
    if _is_adversarial(schedule):
        _enable_adversarial_defenses(system)

    # Bootstrap the shared working set before any fault fires.
    boot = system.spawn(populate_files(system), "simtest-populate")
    paths: List[str] = system.sim.run_until_event(boot, hard_limit=60.0)
    t0 = system.sim.now

    injector = FaultInjector(system)
    for step in schedule.steps:
        injector.apply_step(t0 + step.time, step.kind, step.params)
    injector.start()

    drivers = [WorkloadDriver(system, name, paths)
               for name in system.config.client_names()]
    for driver in drivers:
        system.spawn(driver.run(schedule.horizon), f"simtest-wl:{driver.client.name}")

    live_hits: List[OracleViolation] = []
    seen_keys = set()

    def live_checker() -> Generator[Event, Any, None]:
        end = t0 + schedule.horizon
        while system.sim.now < end:
            yield system.sim.timeout(LIVE_CHECK_INTERVAL)
            for oracle in oracle_list:
                for v in oracle.check_live(system):
                    if v.key() not in seen_keys:
                        seen_keys.add(v.key())
                        live_hits.append(v)

    system.spawn(live_checker(), "simtest-live-oracles")

    settle = SETTLE_LEASES * schedule.tau * (1.0 + schedule.epsilon)
    system.run(until=t0 + schedule.horizon + settle)

    violations = list(live_hits)
    for oracle in oracle_list:
        for v in oracle.check_final(system):
            if v.key() not in seen_keys:
                seen_keys.add(v.key())
                violations.append(v)
    violations.sort(key=lambda v: (v.time, v.oracle, v.node))

    ops = sum(d.stats.ops_succeeded for d in drivers)
    return SimRunResult(schedule=schedule, violations=violations,
                        trace_hash=trace_hash(system), ops_succeeded=ops,
                        system=system if keep_system else None)
