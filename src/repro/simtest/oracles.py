"""Invariant oracles: the paper's safety claims as checkable predicates.

Each oracle watches one claim (DESIGN.md §12 maps them back to the
paper) and reports :class:`OracleViolation` records.  Two check points:

- :meth:`Oracle.check_live` runs periodically *during* a fuzz run
  against live system state (lock tables, lease phases);
- :meth:`Oracle.check_final` runs once after the run settles, against
  the trace, the disks and the server lock history.

Oracles must tolerate every fault the schedule generator can inject —
crashes, partitions, SAN cuts, loss bursts, drawn clock skew — and fire
only on genuine protocol failures.  The exemptions encode the paper's
failure model: data in a crashed client's volatile cache is *expected*
to die (§2); a client whose clock breaks the ε bound is outside the
lease guarantee and needs fencing (§6); data the client could not
harden because its SAN path was cut is a reported I/O failure, not a
silent protocol loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.consistency import ConsistencyAuditor
from repro.core.system import StorageTankSystem
from repro.lease.contract import LeaseContract
from repro.locks.modes import LockMode, compatible
from repro.metadata.directory import Directory, NamespaceError
from repro.net.message import MsgKind

#: Message kinds a *passive* server must never originate (§3: the
#: server keeps no lease state and runs no lease traffic of its own).
SERVER_LEASE_KINDS = frozenset({
    MsgKind.KEEPALIVE, MsgKind.LEASE_RENEW, MsgKind.HEARTBEAT,
})

#: Transport frames (replies) — exempt from the Fig. 5 must-answer rule.
_REPLY_KINDS = frozenset({MsgKind.ACK, MsgKind.NACK, MsgKind.RESULT})

_TIME_SLACK = 1e-6


@dataclass(frozen=True)
class OracleViolation:
    """One observed breach of a safety claim."""

    oracle: str
    time: float
    node: str
    message: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def key(self) -> Tuple[str, str, str]:
        """Dedup key: live checks re-observe the same breach each tick."""
        return (self.oracle, self.node, self.message)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (detail values are repr()'d)."""
        return {"oracle": self.oracle, "time": self.time, "node": self.node,
                "message": self.message,
                "detail": {k: repr(v) for k, v in self.detail.items()}}


class Oracle:
    """Base class: one paper claim, checked live and/or post-run."""

    #: Stable identifier (used for dedup and shrink predicates).
    name = "oracle"
    #: The paper claim this oracle guards (surfaces in DESIGN.md §12).
    claim = ""

    def check_live(self, system: StorageTankSystem) -> List[OracleViolation]:
        """Checked periodically while the run executes; default: nothing."""
        return []

    def check_final(self, system: StorageTankSystem) -> List[OracleViolation]:
        """Checked once after the run; most oracles override this."""
        return []

    def _violation(self, time: float, node: str, message: str,
                   **detail: Any) -> OracleViolation:
        return OracleViolation(oracle=self.name, time=time, node=node,
                               message=message, detail=detail)


# -- shared fault-history reconstruction ----------------------------------

def _fault_events(system: StorageTankSystem) -> List[Tuple[float, str]]:
    """(time, label) for every injected fault, from the trace."""
    return [(rec.time, str(rec.get("label")))
            for rec in system.trace.select(kind="fault.inject")]


def _crashed_before(system: StorageTankSystem, node: str,
                    time: float) -> bool:
    """Whether ``node``'s most recent crash/restart event at or before
    ``time`` was a crash (i.e. the node was down, or died, by then)."""
    state = False
    for t, label in _fault_events(system):
        if t > time + _TIME_SLACK:
            break
        if label == f"crash:{node}":
            state = True
        elif label == f"restart:{node}":
            state = False
    return state


def _ever_crashed_at_or_after(system: StorageTankSystem, node: str,
                              time: float) -> bool:
    """Whether ``node`` crashed at any point at/after ``time``."""
    return any(label == f"crash:{node}" and t >= time - _TIME_SLACK
               for t, label in _fault_events(system))


def _san_cut_active(system: StorageTankSystem, initiator: str,
                    time: float) -> bool:
    """Whether any SAN cut involving ``initiator`` was live at ``time``."""
    prefix = f"san_cut:{initiator}-"
    active = False
    for t, label in _fault_events(system):
        if t > time + _TIME_SLACK:
            break
        if label.startswith(prefix):
            active = True
        elif label == "heal_san":
            active = False
    return active


def _contract(system: StorageTankSystem) -> LeaseContract:
    return system.config.lease.contract()


def _byzantine_clients(system: StorageTankSystem) -> Dict[str, List[str]]:
    """client -> possession kinds, parsed from ``byz_<kind>:<client>``
    fault labels.  A client possessed by *any* misbehavior is outside
    the cooperative protocol: the honest-client oracles exempt it and
    the §6 containment oracles take over."""
    out: Dict[str, List[str]] = {}
    for _t, label in _fault_events(system):
        if label.startswith("byz_"):
            head, sep, client = label.partition(":")
            if sep and client:
                out.setdefault(client, []).append(head[len("byz_"):])
    return out


def _fence_windows(system: StorageTankSystem, server: str,
                   client: str) -> List[Tuple[float, float]]:
    """[start, end] fence windows for one (server, client) pair; an
    unlifted fence extends to the end of the run."""
    windows: List[Tuple[float, float]] = []
    start: Optional[float] = None
    events: List[Tuple[float, int, str]] = []
    for rec in system.trace.select(kind="server.fence"):
        if rec.node == server and rec.get("client") == client:
            events.append((rec.time, 0, "open"))
    for rec in system.trace.select(kind="server.unfence"):
        if rec.node == server and rec.get("client") == client:
            events.append((rec.time, 1, "close"))
    for t, _o, op in sorted(events):
        if op == "open" and start is None:
            start = t
        elif op == "close" and start is not None:
            windows.append((start, t))
            start = None
    if start is not None:
        windows.append((start, system.sim.now))
    return windows


# -- the oracles ----------------------------------------------------------

class LockCompatibilityOracle(Oracle):
    """No two clients hold conflicting locks while both caches are valid.

    The system-wide single-writer guarantee (§2, §3): a steal must never
    complete while the victim still believes its lease — and therefore
    its locks and cache — is good.  Checked *live* because the final
    lock tables of a finished run are usually clean.
    """

    name = "lock-compatibility"
    claim = ("§2/§3: locks cached under a live lease are exclusive — a "
             "steal completes only after the holder's lease expired")

    def check_live(self, system: StorageTankSystem) -> List[OracleViolation]:
        """Flag conflicting locks concurrently held under usable leases."""
        byz = _byzantine_clients(system)
        holders: Dict[int, List[Tuple[str, LockMode]]] = {}
        for cname, client in system.pool.live_items():
            if cname in byz:
                # A possessed client's local lock table lies by design
                # (it keeps entries the server has long voided); the §6
                # containment oracles judge it instead.
                continue
            locks = getattr(client, "locks", None)
            leases = getattr(client, "leases", None)
            if locks is None or leases is None:
                continue
            file_server = getattr(client, "_file_server", {})
            revoking = getattr(client, "_revoking", frozenset())
            for obj, mode in locks.all_held():
                if mode == LockMode.NONE:
                    continue
                if obj in revoking:
                    # Demand compliance in progress: the cache is already
                    # invalidated and new ops are gated, so the table
                    # entry is bookkeeping lag while the release's ACK is
                    # in flight — not a usable lock.
                    continue
                srv = file_server.get(obj)
                managers = ([leases[srv]] if srv in leases
                            else list(leases.values()))
                if not any(m.phase().cache_usable for m in managers):
                    continue  # lease dead: the cached lock is already void
                holders.setdefault(obj, []).append((cname, mode))
        out: List[OracleViolation] = []
        now = system.sim.now
        for obj, entries in holders.items():
            for i, (ca, ma) in enumerate(entries):
                for cb, mb in entries[i + 1:]:
                    if not compatible(ma, mb):
                        out.append(self._violation(
                            now, ca,
                            f"clients {ca}({ma.name}) and {cb}({mb.name}) "
                            f"both hold object {obj} under live leases",
                            obj=obj, other=cb))
        return out


class NoSilentLossOracle(Oracle):
    """No acknowledged write vanishes silently; no invalid cache is read.

    Wraps the offline :class:`ConsistencyAuditor` (invariants I2-I4)
    and exempts I2 losses whose writer crashed after the ack — volatile
    loss on a crash is the paper's stated failure model (§2), not a
    protocol failure.
    """

    name = "no-silent-loss"
    claim = ("§2: every acknowledged write reaches disk or is reported "
             "lost; reads never serve a cache coherence invalidated "
             "(audit invariants I2/I3/I4)")

    def check_final(self, system: StorageTankSystem) -> List[OracleViolation]:
        """Run the consistency audit and report I2/I3/I4 findings."""
        report = ConsistencyAuditor(system).audit()
        byz = _byzantine_clients(system)
        out: List[OracleViolation] = []
        for v in report.lost_updates:
            if v.client in byz:
                continue  # an adversary losing its own data IS containment
            if _ever_crashed_at_or_after(system, v.client, v.time):
                continue  # died with the writer's volatile cache (§2)
            out.append(self._violation(
                v.time, v.client,
                f"acked write {v.detail.get('tag')!r} silently lost",
                **v.detail))
        for v in report.stale_reads:
            if v.client in byz:
                continue  # self-inflicted; §6 judges the honest side only
            out.append(self._violation(
                v.time, v.client,
                f"stale read of {v.detail.get('block')}: got "
                f"{v.detail.get('got')!r} after newer data hardened",
                **v.detail))
        for v in report.unsynchronized_writes:
            if v.client in byz:
                continue  # capability-checked-san-io owns adversary writes
            out.append(self._violation(
                v.time, v.client,
                f"disk write to {v.detail.get('block')} without an "
                f"EXCLUSIVE lock", **v.detail))
        return out


class ExpectedFailureFlushOracle(Oracle):
    """A client that loses its lease flushed its dirty data first.

    Fig. 4's phase-4 guarantee: the flush phase begins early enough that
    everything dirty is hardened to the SAN before expiry, so an
    isolated client loses *service*, not *data*.  Fires when a lease
    expiry dropped dirty pages with no excuse: the client was up, its
    SAN path worked, its clock was in bound and no straggling op held
    the flush hostage.
    """

    name = "expected-failure-flush"
    claim = ("§3.2/Fig. 4: the expected-failure flush hardens all dirty "
             "data to the SAN before the lease expires")

    def check_final(self, system: StorageTankSystem) -> List[OracleViolation]:
        """Flag expected-failure paths that dropped dirty data without cause."""
        out: List[OracleViolation] = []
        slow = set(system.config.slow_clients)
        byz = _byzantine_clients(system)
        for rec in system.trace.select(kind="client.lease_lost"):
            dropped = int(rec.get("dirty_dropped") or 0)
            if dropped == 0:
                continue
            client = rec.node
            if client in slow:
                continue  # outside the lease guarantee (§6): fencing's job
            if client in byz:
                continue  # a possessed client sabotages its own flush
            if int(rec.get("in_flight") or 0) > 0:
                continue  # expiry raced an op still draining; flush blocked
            if _crashed_before(system, client, rec.time):
                continue  # dead clients cannot flush (§2 volatile loss)
            if _san_cut_active(system, client, rec.time):
                continue  # flush path itself was down: reported I/O failure
            out.append(self._violation(
                rec.time, client,
                f"lease expired with {dropped} dirty page(s) dropped "
                f"despite a working flush path", dirty_dropped=dropped,
                server=rec.get("server")))
        return out


class PassiveServerOracle(Oracle):
    """The server stays lease-passive (the paper's headline property).

    §3: during normal operation the server keeps no lease records and
    sends no lease messages.  Three checks: (a) no server ever *sends* a
    lease-kind message; (b) a server that never suspected anyone charged
    zero lease messages; (c) every server NACK falls inside a suspect
    window — the only situation in which the lease protocol makes the
    server do anything at all.
    """

    name = "passive-server"
    claim = ("§3: the server retains no lease state and initiates no "
             "lease messages; NACKs occur only while timing a client out")

    def check_final(self, system: StorageTankSystem) -> List[OracleViolation]:
        """Flag server-originated lease traffic and out-of-window NACKs."""
        out: List[OracleViolation] = []
        servers = getattr(system, "servers", None) or {
            system.server.name: system.server}
        for rec in system.trace.select(kind="msg.send"):
            if rec.node in servers and rec.get("msg_kind") in SERVER_LEASE_KINDS:
                out.append(self._violation(
                    rec.time, rec.node,
                    f"server sent lease message {rec.get('msg_kind')!r}",
                    msg_kind=rec.get("msg_kind"), dst=rec.get("dst")))
        for sname, srv in servers.items():
            authority = getattr(srv, "authority", None)
            if authority is None:
                continue
            suspects = [r for r in system.trace.select(kind="lease.suspect")
                        if r.node == sname]
            snapshot = authority.overhead_snapshot()
            if not suspects and snapshot.get("lease_msgs_sent", 0.0) > 0:
                out.append(self._violation(
                    system.sim.now, sname,
                    f"server charged {snapshot['lease_msgs_sent']:g} lease "
                    f"messages without ever suspecting a client",
                    **{k: float(v) for k, v in snapshot.items()}))
        for rec in system.trace.select(kind="lease.server_nack"):
            if not _in_suspect_window(system, rec.node,
                                      str(rec.get("client")), rec.time):
                out.append(self._violation(
                    rec.time, rec.node,
                    f"server NACKed {rec.get('client')!r} outside any "
                    f"suspect window", client=rec.get("client"),
                    msg_kind=rec.get("msg_kind")))
        return out


def _suspect_windows(system: StorageTankSystem, server: str,
                     client: str) -> List[Tuple[float, float]]:
    """[start, end] suspect windows for one (server, client) pair; an
    unresolved window extends to the end of the run."""
    windows: List[Tuple[float, float]] = []
    start: Optional[float] = None
    events: List[Tuple[float, int, str]] = []
    for rec in system.trace.select(kind="lease.suspect"):
        if rec.node == server and rec.get("client") == client:
            events.append((rec.time, 0, "open"))
    for rec in system.trace.select(kind="lease.steal"):
        if rec.node == server and rec.get("client") == client:
            events.append((rec.time, 1, "close"))
    for t, _o, op in sorted(events):
        if op == "open" and start is None:
            start = t
        elif op == "close" and start is not None:
            windows.append((start, t))
            start = None
    if start is not None:
        windows.append((start, system.sim.now))
    return windows


def _in_suspect_window(system: StorageTankSystem, server: str,
                       client: str, time: float) -> bool:
    return any(s - _TIME_SLACK <= time <= e + _TIME_SLACK
               for s, e in _suspect_windows(system, server, client))


class NackTimedOutOracle(Oracle):
    """A request from a client being timed out is answered with a NACK.

    §3.3/Fig. 5: the server can neither ACK (it would renew the lease it
    is expiring) nor stay silent (the client would hang in retries) — it
    must NACK so the client learns its cache is invalid right away.
    Skipped when the ablation knob ``nack_suspects=False`` is set.
    """

    name = "nack-timed-out"
    claim = ("§3.3/Fig. 5: while a client is being timed out, its "
             "requests are answered with a NACK, never ACKed or dropped")

    def check_final(self, system: StorageTankSystem) -> List[OracleViolation]:
        """Flag suspect-window requests that were not answered with a NACK."""
        out: List[OracleViolation] = []
        servers = getattr(system, "servers", None) or {
            system.server.name: system.server}
        for sname, srv in servers.items():
            authority = getattr(srv, "authority", None)
            if authority is None or not getattr(authority, "nack_suspects", True):
                continue
            nack_times = [r.time for r in
                          system.trace.select(kind="lease.server_nack")
                          if r.node == sname]
            clients = {str(r.get("client")) for r in
                       system.trace.select(kind="lease.suspect")
                       if r.node == sname}
            for client in clients:
                windows = _suspect_windows(system, sname, client)
                for rec in system.trace.select(kind="msg.recv"):
                    if rec.node != sname or rec.get("src") != client:
                        continue
                    if rec.get("msg_kind") in _REPLY_KINDS:
                        continue
                    t = rec.time
                    if not any(s + _TIME_SLACK < t < e - _TIME_SLACK
                               for s, e in windows):
                        continue
                    if not any(abs(nt - t) <= _TIME_SLACK
                               for nt in nack_times):
                        out.append(self._violation(
                            t, sname,
                            f"request {rec.get('msg_kind')!r} from "
                            f"timed-out client {client!r} was not NACKed",
                            client=client, msg_kind=rec.get("msg_kind")))
        return out


class Theorem31Oracle(Oracle):
    """Steals happen only after the victim's lease provably expired.

    Theorem 3.1: with rate-synchronized clocks (bound ε), a server that
    waits τ(1+ε) after its last ACK to a client outlives every lease
    interval that ACK could have started.  Checked from the trace: each
    ``lease.steal`` must postdate the global expiry of the victim's last
    renewed lease, computed through the victim's own skewed clock.
    Clients configured to violate the clock bound (§6) are exempt —
    that is precisely the case the theorem does not cover.
    """

    name = "theorem-3.1"
    claim = ("§3 Thm 3.1: the server's τ(1+ε) wait strictly covers the "
             "client's τ lease interval under the rate-skew bound")

    def check_final(self, system: StorageTankSystem) -> List[OracleViolation]:
        """Flag steals that precede the stolen client's lease expiry bound."""
        out: List[OracleViolation] = []
        contract = _contract(system)
        slow = set(system.config.slow_clients)
        byz = _byzantine_clients(system)
        clocks = system.clocks.clocks
        renewals = list(system.trace.select(kind="lease.renewed"))
        for steal in system.trace.select(kind="lease.steal"):
            client = str(steal.get("client"))
            if client in slow or client not in clocks:
                continue
            if client in byz:
                # A possessed client (above all stretch_clock, which is
                # exactly the §6 slow-computer case) is outside the
                # theorem's rate-skew assumption.
                continue
            server = steal.node
            last_start: Optional[float] = None
            for rec in renewals:
                if (rec.node == client and rec.get("server") == server
                        and rec.time <= steal.time + _TIME_SLACK):
                    start = rec.get("start_local")
                    if start is not None:
                        last_start = float(start)
            if last_start is None:
                continue  # never held a lease; nothing to outlive
            expiry_local = contract.client_expiry_local(last_start)
            expiry_global = clocks[client].global_time(expiry_local)
            if steal.time < expiry_global - _TIME_SLACK:
                out.append(self._violation(
                    steal.time, server,
                    f"locks of {client!r} stolen "
                    f"{expiry_global - steal.time:.6f}s before its lease "
                    f"expired", client=client,
                    lease_expiry_global=expiry_global))
        return out


class CacheNoStaleEntryOracle(Oracle):
    """Every netcache hit served the value the servers then held.

    The cache tier's one safety claim (DESIGN.md §15): an entry served
    from soft state is indistinguishable from asking the server at that
    instant.  The servers emit an authoritative ``meta.mutate`` record
    at every apply point (post-barrier) and each cache hit carries a
    value fingerprint, so replaying the trace in emission (= causal)
    order rebuilds the namespace and catches any hit whose fingerprint
    disagrees with the metadata state current at serve time.  Runs
    without a cache tier produce neither record kind and stay silent.
    """

    name = "cache-serves-no-stale-entry"
    claim = ("DESIGN.md §15: a metadata value served from a cache node "
             "always equals the value the owning server held at that "
             "moment (invalidate-before-apply + lease-scoped entries)")

    def check_final(self, system: StorageTankSystem) -> List[OracleViolation]:
        """Replay meta.mutate vs netcache.hit records in causal order."""
        out: List[OracleViolation] = []
        namespace = Directory()
        sizes: Dict[int, int] = {}
        for rec in system.trace.records:
            if rec.kind == "meta.mutate":
                op = str(rec.get("op"))
                if op == "create":
                    fid = int(rec.get("file_id") or 0)
                    try:
                        namespace.create(str(rec.get("path")), fid)
                    except NamespaceError:
                        pass
                    sizes[fid] = int(rec.get("size") or 0)
                elif op == "setattr":
                    sizes[int(rec.get("file_id") or 0)] = \
                        int(rec.get("size") or 0)
                elif op == "unlink":
                    try:
                        namespace.unlink(str(rec.get("path")))
                    except NamespaceError:
                        pass
            elif rec.kind == "netcache.hit":
                stale = self._stale_hit(rec, namespace, sizes)
                if stale is not None:
                    out.append(self._violation(
                        rec.time, rec.node, stale,
                        key_kind=rec.get("key_kind"), path=rec.get("path"),
                        fingerprint=rec.get("fingerprint")))
        return out

    @staticmethod
    def _stale_hit(rec: Any, namespace: Directory,
                   sizes: Dict[int, int]) -> Optional[str]:
        """Reason string when the hit disagrees with current state."""
        key_kind = str(rec.get("key_kind"))
        path = str(rec.get("path"))
        fp = rec.get("fingerprint")
        if key_kind == "readdir":
            expected = tuple(namespace.listdir(path))
            got = tuple(fp or ())
            if got != expected:
                return (f"readdir hit for {path!r} served {got!r}, "
                        f"authoritative listing is {expected!r}")
            return None
        try:
            fid = namespace.lookup(path)
        except NamespaceError:
            return (f"{key_kind} hit for {path!r} served "
                    f"{fp!r} but the path does not exist")
        if key_kind == "lookup":
            if int(fp) != fid:
                return (f"lookup hit for {path!r} served file id "
                        f"{fp!r}, authoritative id is {fid}")
            return None
        got_fid, got_size = fp
        if int(got_fid) != fid or int(got_size) != sizes.get(fid, 0):
            return (f"attrs hit for {path!r} served "
                    f"(fid={got_fid}, size={got_size}), authoritative is "
                    f"(fid={fid}, size={sizes.get(fid, 0)})")
        return None


class FencedClientNoStaleServiceOracle(Oracle):
    """A fenced client touches no shared storage and regains no trust.

    §6's whole point: once the server distrusts a client it constructs a
    fence *at the store*, so even a client that ignores its lease — or
    whose commands are still in flight from a slow computer — cannot
    read or modify shared data.  Two checks per fence window (from
    ``server.fence``/``server.unfence`` trace records):

    - no *accepted* disk I/O by the fenced initiator lands inside the
      window (denied I/O is the fence doing its job);
    - the server grants the fenced client no LOCK_REASSERT inside the
      window (re-trusting a distrusted incarnation's lock claims is the
      stale-capability replay hole in reverse);
    - every fence *lift* is earned: the client observably went through
      phase 4 (a ``client.lease_lost`` / lease-expired cache flush) since
      the last time the server trusted it — unfencing an incarnation
      that never discarded its lease state readmits its stale cache and
      stale lock table whole.

    Runs on every schedule, adversarial or not.
    """

    name = "fenced-client-serves-no-stale-data"
    claim = ("§6: a fence constructed between a distrusted client and "
             "the shared store blocks all of its I/O, and the server "
             "extends it no new trust until the fence lifts")

    def check_final(self, system: StorageTankSystem) -> List[OracleViolation]:
        """Flag accepted I/O and granted reasserts inside fence windows."""
        out: List[OracleViolation] = []
        pairs = sorted({(rec.node, str(rec.get("client")))
                        for rec in system.trace.select(kind="server.fence")})
        for server, client in pairs:
            windows = _fence_windows(system, server, client)

            def inside(t: float) -> bool:
                return any(s + _TIME_SLACK < t < e - _TIME_SLACK
                           for s, e in windows)

            for dname, disk in sorted(system.disks.items()):
                for ev in disk.history:
                    if ev.initiator != client or ev.op not in ("write",
                                                               "read"):
                        continue
                    if inside(ev.time):
                        out.append(self._violation(
                            ev.time, client,
                            f"fenced client {client!r} got an accepted "
                            f"{ev.op} at {dname}:{ev.lba} inside a fence "
                            f"window", device=dname, lba=ev.lba, op=ev.op,
                            tag=ev.tag, server=server))
            for rec in system.trace.select(kind="server.reassert"):
                if (rec.node == server and rec.get("client") == client
                        and inside(rec.time)):
                    out.append(self._violation(
                        rec.time, server,
                        f"server granted fenced client {client!r} a "
                        f"reassert of object {rec.get('obj')} inside a "
                        f"fence window", client=client, obj=rec.get("obj")))
            out.extend(self._unearned_unfences(system, server, client))
        return out

    def _unearned_unfences(self, system: StorageTankSystem, server: str,
                           client: str) -> List[OracleViolation]:
        """Unfences with no observed lapse since the previous re-trust."""
        lapses = self._lapse_times(system, client)
        out: List[OracleViolation] = []
        prev = float("-inf")
        unfences = sorted(rec.time for rec
                          in system.trace.select(kind="server.unfence")
                          if rec.node == server
                          and rec.get("client") == client)
        for t in unfences:
            if not any(prev < lt <= t + _TIME_SLACK for lt in lapses):
                out.append(self._violation(
                    t, server,
                    f"server unfenced {client!r} although the client "
                    f"never observably discarded its lease state",
                    client=client))
            prev = t
        return out

    @staticmethod
    def _lapse_times(system: StorageTankSystem, client: str) -> List[float]:
        """When ``client`` observably went through phase 4 (lapse)."""
        times = [rec.time for rec
                 in system.trace.select(kind="client.lease_lost")
                 if rec.node == client]
        times.extend(rec.time for rec
                     in system.trace.select(kind="netcache.flush")
                     if rec.node == client
                     and rec.get("reason") == "lease-expired")
        return sorted(times)


class CapabilityCheckedSanIoOracle(Oracle):
    """An adversary's SAN write is honored only under a live capability.

    Chaudhuri's complaint about NASD-style designs — any initiator can
    scribble on shared devices — is what Storage Tank's server-granted
    locks plus fencing answer: a data write is legitimate only while the
    *server-side* lock table shows the writer holding EXCLUSIVE on the
    file (the lock is the capability; the fence is its revocation).
    For every possessed client, each accepted disk write must fall
    inside a server-recorded EXCLUSIVE interval (grant → release /
    downgrade / steal) covering that block's file.  Silent on runs
    without adversaries — for honest clients the same claim is already
    NoSilentLossOracle's I4.
    """

    name = "capability-checked-san-io"
    claim = ("§6/Chaudhuri: shared-store writes are honored only under "
             "a server-granted, unrevoked lock capability — fencing "
             "makes the revocation effective at the device")

    def check_final(self, system: StorageTankSystem) -> List[OracleViolation]:
        """Flag adversary disk writes outside any EXCLUSIVE interval."""
        byz = _byzantine_clients(system)
        if not byz:
            return []
        servers = getattr(system, "servers", None) or {
            system.server.name: system.server}
        history = []
        for srv in servers.values():
            history.extend(srv.locks.history)
        history.sort(key=lambda g: g.time)
        intervals: Dict[Tuple[int, str], List[Tuple[float, float]]] = {}
        open_at: Dict[Tuple[int, str], float] = {}
        for g in history:
            key = (g.obj, g.client)
            if g.op == "grant" and g.mode == LockMode.EXCLUSIVE:
                open_at.setdefault(key, g.time)
            elif g.op == "downgrade" and g.mode != LockMode.EXCLUSIVE:
                start = open_at.pop(key, None)
                if start is not None:
                    intervals.setdefault(key, []).append((start, g.time))
            elif g.op in ("release", "steal"):
                start = open_at.pop(key, None)
                if start is not None:
                    intervals.setdefault(key, []).append((start, g.time))
        horizon = system.sim.now
        for key, start in open_at.items():
            intervals.setdefault(key, []).append((start, horizon))

        block_file: Dict[Tuple[str, int], int] = {}
        for srv in servers.values():
            meta = srv.metadata
            for fid in list(meta._inodes):
                for addr in meta._inodes[fid].extents.iter_physical():
                    block_file[addr] = fid

        out: List[OracleViolation] = []
        for dname, disk in sorted(system.disks.items()):
            for ev in disk.history:
                if ev.op != "write" or ev.initiator not in byz:
                    continue
                fid = block_file.get((dname, ev.lba))
                if fid is None:
                    continue  # unallocated scribble; not file data
                covered = any(
                    s - _TIME_SLACK <= ev.time <= e + _TIME_SLACK
                    for s, e in intervals.get((fid, ev.initiator), []))
                if not covered:
                    out.append(self._violation(
                        ev.time, ev.initiator,
                        f"adversary {ev.initiator!r} landed write "
                        f"{ev.tag!r} on {dname}:{ev.lba} (file {fid}) "
                        f"with no covering lock capability",
                        device=dname, lba=ev.lba, file=fid, tag=ev.tag))
        return out


class ByzantineContainmentOracle(Oracle):
    """Misbehavior is contained: honest clients stay consistent and fed.

    The §6 claim is containment, not prevention — an adversary may
    corrupt *its own* data and burn *its own* lease, but (a) honest
    clients' acked writes survive, their reads are fresh and their disk
    writes are lock-covered (the audit invariants, filtered to honest
    clients), and (b) no honest client starves forever behind a
    conflicting adversary holding: the demand-escalation path must
    eventually suspect, steal from and fence the silent holder.
    Silent on runs without adversaries.
    """

    name = "byzantine-containment"
    claim = ("§6: fencing contains a client that fails to respect its "
             "lease — honest clients' consistency and progress are "
             "preserved")

    def check_final(self, system: StorageTankSystem) -> List[OracleViolation]:
        """Honest-filtered audit invariants plus the starvation clause."""
        byz = _byzantine_clients(system)
        if not byz:
            return []
        out: List[OracleViolation] = []
        report = ConsistencyAuditor(system).audit()
        for v in report.lost_updates:
            if v.client in byz:
                continue
            if _ever_crashed_at_or_after(system, v.client, v.time):
                continue
            out.append(self._violation(
                v.time, v.client,
                f"honest client's acked write {v.detail.get('tag')!r} "
                f"lost under an adversary", **v.detail))
        for v in report.stale_reads:
            if v.client not in byz:
                out.append(self._violation(
                    v.time, v.client,
                    f"honest client read stale data at "
                    f"{v.detail.get('block')} under an adversary",
                    **v.detail))
        for v in report.unsynchronized_writes:
            if v.client not in byz:
                out.append(self._violation(
                    v.time, v.client,
                    f"honest client wrote {v.detail.get('block')} without "
                    f"a lock under an adversary", **v.detail))
        out.extend(self._starvation(system, byz))
        return out

    def _starvation(self, system: StorageTankSystem,
                    byz: Dict[str, List[str]]) -> List[OracleViolation]:
        """Honest waiters stuck behind an unresolved adversary holder."""
        out: List[OracleViolation] = []
        servers = getattr(system, "servers", None) or {
            system.server.name: system.server}
        contract = _contract(system)
        now = system.sim.now
        for sname, srv in servers.items():
            locks = getattr(srv, "locks", None)
            config = getattr(srv, "config", None)
            if locks is None or config is None:
                continue
            patience = float(getattr(config, "demand_patience", 2.0))
            rounds = int(getattr(config, "demand_escalate_rounds", 0)) or 6
            budget = 2.0 * rounds * patience * (1.0 + contract.epsilon)
            for obj, waiters in sorted(locks._waiters.items()):
                for waiter in waiters:
                    if waiter.client in byz:
                        continue
                    for holder, held in sorted(locks.holders(obj).items()):
                        if holder not in byz or compatible(held, waiter.mode):
                            continue
                        first_demand = self._first_demand(system, sname,
                                                          holder)
                        if first_demand is None:
                            continue
                        if self._resolved_after(system, sname, holder,
                                                first_demand):
                            continue
                        if now - first_demand > budget:
                            out.append(self._violation(
                                now, waiter.client,
                                f"honest client {waiter.client!r} starved "
                                f"on object {obj} behind adversary "
                                f"{holder!r} for "
                                f"{now - first_demand:.1f}s with no "
                                f"escalation", obj=obj, holder=holder,
                                first_demand=first_demand))
        return out

    @staticmethod
    def _first_demand(system: StorageTankSystem, server: str,
                      holder: str) -> Optional[float]:
        for rec in system.trace.select(kind="msg.send"):
            if (rec.node == server and rec.get("dst") == holder
                    and rec.get("msg_kind") == str(MsgKind.LOCK_DEMAND)):
                return rec.time
        return None

    @staticmethod
    def _resolved_after(system: StorageTankSystem, server: str,
                        holder: str, time: float) -> bool:
        for kind in ("lease.suspect", "server.steal"):
            for rec in system.trace.select(kind=kind):
                if (rec.node == server and rec.get("client") == holder
                        and rec.time >= time - _TIME_SLACK):
                    return True
        return False


def default_oracles() -> List[Oracle]:
    """The standard invariant library, one instance each."""
    return [
        LockCompatibilityOracle(),
        NoSilentLossOracle(),
        ExpectedFailureFlushOracle(),
        PassiveServerOracle(),
        NackTimedOutOracle(),
        Theorem31Oracle(),
        CacheNoStaleEntryOracle(),
        FencedClientNoStaleServiceOracle(),
        CapabilityCheckedSanIoOracle(),
        ByzantineContainmentOracle(),
    ]
