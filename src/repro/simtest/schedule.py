"""Schedule data model and the seeded fault-schedule generator.

A :class:`Schedule` is plain data: the root seed, the environment knobs
(cluster size, τ, drawn ε, horizon) and a sorted tuple of
:class:`FaultStep` entries whose kinds come from
:data:`repro.fault.STEP_KINDS`.  Because every random draw — the
schedule itself, the clock rates, the workload, the network jitter —
flows from the one root seed through :class:`repro.sim.rng.RandomStreams`,
a schedule is a complete, replayable description of a run: serialize it
(:meth:`Schedule.to_dict`), ship it in a failure artifact, feed it back
through :func:`repro.simtest.runner.run_schedule` and the event trace
hashes bit-identically.

The generator (:func:`generate_schedule`) draws *primary* fault events —
client isolation, SAN cuts, client/server crashes, message-loss bursts —
and pairs most of them with a later heal/restart/burst-end step, so a
generated schedule exercises both fault onset and recovery paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.core.config import (LeaseConfig, NetCacheConfig, SystemConfig,
                               WorkloadConfig)
from repro.fault.injector import STEP_KINDS, ScheduleError
from repro.sim.rng import RandomStreams

#: Version stamp for serialized schedules (embedded in failure artifacts).
SCHEDULE_SCHEMA = "repro.simtest.schedule/1.0"

#: Kinds the generator may draw as primary events, with relative weights.
#: Heals / restarts / burst-ends are emitted as paired follow-up steps,
#: never drawn independently (an unpaired heal is a no-op).
PRIMARY_KINDS: Tuple[Tuple[str, float], ...] = (
    ("isolate_client", 3.0),
    ("partition_san", 2.0),
    ("crash_client", 2.0),
    ("crash_server", 1.0),
    ("loss_burst", 2.0),
)

#: Extra primaries joined to the pool only when the schedule runs a
#: netcache tier (``cache_nodes > 0``), so cache-less schedules draw an
#: unchanged RNG sequence.
CACHE_KINDS: Tuple[Tuple[str, float], ...] = (
    ("crash_cache", 2.0),
    ("flush_cache", 1.0),
)

#: Byzantine possession kinds with relative weights (drawn once per
#: adversary in the schedule's adversary budget, *after* the primary
#: loop, so fail-stop schedules draw an unchanged RNG sequence).
BYZ_KINDS: Tuple[Tuple[str, float], ...] = (
    ("ignore_lease_expiry", 3.0),
    ("suppress_release", 2.0),
    ("forge_san_write", 2.0),
    ("replay_stale_grant", 2.0),
    ("stretch_clock", 1.0),
)


@dataclass(frozen=True)
class FaultStep:
    """One data-described fault action at a relative schedule time."""

    time: float
    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in STEP_KINDS:
            raise ScheduleError(
                f"unknown fault step kind {self.kind!r}; "
                f"known kinds: {sorted(STEP_KINDS)}")
        if not (self.time >= 0.0):  # also rejects NaN
            raise ScheduleError(
                f"fault step time must be non-negative, got {self.time!r}")
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form."""
        return {"time": self.time, "kind": self.kind,
                "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultStep":
        return cls(time=float(data["time"]), kind=str(data["kind"]),
                   params=dict(data.get("params") or {}))


@dataclass(frozen=True)
class Schedule:
    """A complete, replayable fuzz-run description."""

    seed: int
    horizon: float
    n_clients: int = 3
    tau: float = 8.0
    epsilon: float = 0.05
    break_mode: str = ""
    steps: Tuple[FaultStep, ...] = ()
    #: Number of in-network metadata cache nodes (0 = no cache tier;
    #: pre-existing serialized schedules deserialize to 0).
    cache_nodes: int = 0
    #: Adversary budget: how many Byzantine possession steps the
    #: generator drew (0 = fail-stop only; pre-existing serialized
    #: schedules deserialize to 0).
    adversaries: int = 0
    #: Run the installation with intent locking + lock batching enabled
    #: (False = split protocol; pre-existing serialized schedules
    #: deserialize to False).  A config knob, not a fault kind: it draws
    #: no RNG values, so the same seed fuzzes the same fault sequence
    #: against either protocol variant.
    intents: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "steps",
            tuple(sorted(self.steps, key=lambda s: s.time)))
        for step in self.steps:
            if step.time > self.horizon:
                raise ScheduleError(
                    f"fault step at t={step.time} lies beyond the "
                    f"schedule horizon {self.horizon}")

    def with_steps(self, steps: Sequence[FaultStep]) -> "Schedule":
        """The same run environment with a different step list (the
        shrinker's primitive operation)."""
        return replace(self, steps=tuple(steps))

    def system_config(self) -> SystemConfig:
        """The installation this schedule runs against.

        Small and fast on purpose: τ is short so lease phase
        transitions, expiries and steals all happen within a bounded
        horizon; RPC timeouts are tightened so an in-flight op admitted
        before the suspect boundary still drains inside the flush
        window; the workload hammers a handful of files so clients
        actually contend for locks.
        """
        if self.cache_nodes > 0:
            # Cache-tier runs shift the workload toward metadata so the
            # hit path, the invalidation barrier and the stale-entry
            # oracle all see real traffic.
            workload = WorkloadConfig(n_files=4, file_size_blocks=8,
                                      read_fraction=0.6, think_time=0.2,
                                      io_blocks=2, meta_fraction=0.5,
                                      meta_mutate_fraction=0.25)
            netcache = NetCacheConfig(enabled=True, n_nodes=self.cache_nodes)
        else:
            workload = WorkloadConfig(n_files=4, file_size_blocks=8,
                                      read_fraction=0.6, think_time=0.2,
                                      io_blocks=2)
            netcache = NetCacheConfig()
        return SystemConfig(
            n_clients=self.n_clients,
            n_servers=1,
            seed=self.seed,
            protocol="storage_tank",
            record_trace=True,
            rpc_timeout=0.5,
            rpc_retries=2,
            writeback_interval=2.0,
            intents=self.intents,
            lease=LeaseConfig(tau=self.tau, epsilon=self.epsilon),
            workload=workload,
            netcache=netcache,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (embedded in failure artifacts)."""
        return {
            "schema": SCHEDULE_SCHEMA,
            "seed": self.seed,
            "horizon": self.horizon,
            "n_clients": self.n_clients,
            "tau": self.tau,
            "epsilon": self.epsilon,
            "break_mode": self.break_mode,
            "cache_nodes": self.cache_nodes,
            "adversaries": self.adversaries,
            "intents": self.intents,
            "steps": [s.to_dict() for s in self.steps],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Schedule":
        schema = data.get("schema")
        if schema != SCHEDULE_SCHEMA:
            raise ScheduleError(
                f"expected schedule schema {SCHEDULE_SCHEMA!r}, "
                f"got {schema!r}")
        return cls(
            seed=int(data["seed"]),
            horizon=float(data["horizon"]),
            n_clients=int(data.get("n_clients", 3)),
            tau=float(data.get("tau", 8.0)),
            epsilon=float(data.get("epsilon", 0.05)),
            break_mode=str(data.get("break_mode", "")),
            cache_nodes=int(data.get("cache_nodes", 0)),
            adversaries=int(data.get("adversaries", 0)),
            intents=bool(data.get("intents", False)),
            steps=tuple(FaultStep.from_dict(s)
                        for s in data.get("steps", ())),
        )


def generate_schedule(seed: int, n_steps: int,
                      break_mode: str = "",
                      cache_nodes: int = 0,
                      adversaries: int = 0,
                      intents: bool = False) -> Schedule:
    """Draw a randomized fault schedule from one root seed.

    ``n_steps`` counts *primary* fault events; paired heals, restarts
    and burst-ends roughly double the final step count.  The horizon
    scales with ``n_steps`` so event density stays constant, and every
    draw comes from the ``"simtest.schedule"`` stream of
    ``RandomStreams(seed)`` — two calls with the same arguments build
    identical schedules.  With ``cache_nodes > 0`` the run gets a
    netcache tier and cache crash/flush kinds join the primary pool;
    with 0 the draw sequence is identical to pre-cache releases.
    With ``adversaries > 0``, that many Byzantine possession steps are
    drawn *after* the primary loop (victim, kind, early onset time), so
    fail-stop schedules draw an unchanged RNG sequence.
    ``intents`` is threaded straight onto the schedule without touching
    the RNG, so the same seed replays the same faults against either
    protocol variant.
    """
    if n_steps < 0:
        raise ScheduleError(f"n_steps must be >= 0, got {n_steps}")
    if cache_nodes < 0:
        raise ScheduleError(f"cache_nodes must be >= 0, got {cache_nodes}")
    if adversaries < 0:
        raise ScheduleError(f"adversaries must be >= 0, got {adversaries}")
    rng = RandomStreams(seed).get("simtest.schedule")
    n_clients = int(rng.integers(2, 4))           # 2 or 3
    epsilon = float(rng.uniform(0.0, 0.1))
    horizon = 16.0 + 1.0 * n_steps

    clients = [f"c{i}" for i in range(1, n_clients + 1)]
    caches = [f"mcache{i}" for i in range(1, cache_nodes + 1)]
    pool = list(PRIMARY_KINDS)
    if cache_nodes > 0:
        pool.extend(CACHE_KINDS)
    kinds = [k for k, _ in pool]
    weights = [w for _, w in pool]
    total_w = sum(weights)
    probs = [w / total_w for w in weights]

    steps: List[FaultStep] = []
    # Primary events land in the first ~80% of the horizon so their
    # recovery phases have room to play out before the run ends.
    onset_lo, onset_hi = 2.0, max(2.5, horizon * 0.8)
    for _ in range(n_steps):
        t = float(rng.uniform(onset_lo, onset_hi))
        dur = float(rng.uniform(1.0, max(1.5, horizon / 5.0)))
        t_heal = min(t + dur, horizon)
        kind = kinds[int(rng.choice(len(kinds), p=probs))]
        if kind == "isolate_client":
            client = clients[int(rng.integers(0, n_clients))]
            steps.append(FaultStep(t, "isolate_client", {"client": client}))
            steps.append(FaultStep(t_heal, "heal_control"))
        elif kind == "partition_san":
            client = clients[int(rng.integers(0, n_clients))]
            steps.append(FaultStep(t, "partition_san",
                                   {"initiator": client, "device": "disk1"}))
            steps.append(FaultStep(t_heal, "heal_san"))
        elif kind == "crash_client":
            client = clients[int(rng.integers(0, n_clients))]
            steps.append(FaultStep(t, "crash_client_lossy",
                                   {"client": client}))
            if rng.uniform() < 0.75:
                steps.append(FaultStep(t_heal, "restart_client",
                                       {"client": client}))
        elif kind == "crash_server":
            steps.append(FaultStep(t, "crash_server", {"server": "server"}))
            if rng.uniform() < 0.85:
                steps.append(FaultStep(t_heal, "restart_server",
                                       {"server": "server"}))
        elif kind == "loss_burst":
            p = float(rng.uniform(0.05, 0.4))
            steps.append(FaultStep(t, "loss_burst", {"probability": p}))
            steps.append(FaultStep(t_heal, "end_loss_burst"))
        elif kind == "crash_cache":
            node = caches[int(rng.integers(0, cache_nodes))]
            steps.append(FaultStep(t, "crash_cache", {"node": node}))
            if rng.uniform() < 0.8:
                steps.append(FaultStep(t_heal, "restart_cache",
                                       {"node": node}))
        else:  # flush_cache
            node = caches[int(rng.integers(0, cache_nodes))]
            steps.append(FaultStep(t, "flush_cache", {"node": node}))

    # Byzantine possessions land early (first ~40% of the horizon) so
    # the run has room to detect, steal from and fence the adversary.
    byz_kinds = [k for k, _ in BYZ_KINDS]
    byz_w = [w for _, w in BYZ_KINDS]
    byz_total = sum(byz_w)
    byz_probs = [w / byz_total for w in byz_w]
    for _ in range(adversaries):
        client = clients[int(rng.integers(0, n_clients))]
        kind = byz_kinds[int(rng.choice(len(byz_kinds), p=byz_probs))]
        t = float(rng.uniform(1.0, max(1.5, horizon * 0.4)))
        steps.append(FaultStep(t, kind, {"client": client}))

    return Schedule(seed=seed, horizon=horizon, n_clients=n_clients,
                    epsilon=epsilon, break_mode=break_mode,
                    cache_nodes=cache_nodes, adversaries=adversaries,
                    intents=intents, steps=tuple(steps))
