"""Command-line front door: ``python -m repro.simtest``.

Modes (mutually exclusive):

- default (``--seed N --steps K``): generate one schedule, run it; on
  an oracle violation, shrink the schedule to a minimal repro and write
  a replayable failure artifact;
- ``--replay ARTIFACT``: re-run a failure artifact's schedule and
  verify the trace hash reproduces bit-identically;
- ``--corpus``: replay every pinned regression seed (clean + identical
  hash required);
- ``--batch N``: run N fresh schedules with seeds drawn from
  ``--batch-seed`` (printed, so any CI batch is replayable);
- ``--update-corpus``: re-bless the pinned corpus hashes.

Exit codes follow the repo convention (``repro.lint``): 0 clean,
1 violations / reproduction mismatch, 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.timeline import render_lease_timeline
from repro.obs.artifact import (load_artifact, make_failure_artifact,
                                write_artifact)
from repro.sim.rng import RandomStreams
from repro.simtest.corpus import bless_corpus, replay_corpus
from repro.simtest.parallel import run_batch_parallel
from repro.simtest.runner import (BREAK_MODES, SimRunResult, run_schedule)
from repro.simtest.schedule import Schedule, generate_schedule
from repro.simtest.shrink import shrink_schedule

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for ``python -m repro.simtest``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.simtest",
        description="Deterministic schedule fuzzing with invariant oracles.")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed for schedule generation (default 0)")
    parser.add_argument("--steps", type=int, default=20,
                        help="primary fault events to draw (default 20)")
    parser.add_argument("--cache-nodes", type=int, default=0, metavar="N",
                        help="run with N in-network metadata cache nodes "
                             "(adds cache crash/flush fault kinds and the "
                             "stale-entry oracle's traffic; default 0)")
    parser.add_argument("--adversaries", type=int, default=0, metavar="N",
                        help="possess N clients with Byzantine behaviors "
                             "drawn from the adversary pool (ignore-expiry, "
                             "suppress-release, forged SAN writes, stale "
                             "replays, clock stretch; default 0)")
    parser.add_argument("--intents", action="store_true",
                        help="run with intent locking + lock batching "
                             "enabled (same fault schedule, batched "
                             "protocol variant; default off)")
    parser.add_argument("--replay", metavar="ARTIFACT",
                        help="re-run a failure artifact and verify its "
                             "trace hash reproduces")
    parser.add_argument("--corpus", action="store_true",
                        help="replay the pinned regression-seed corpus")
    parser.add_argument("--batch", type=int, metavar="N",
                        help="run N fresh schedules (seeds derived from "
                             "--batch-seed)")
    parser.add_argument("--batch-seed", type=int, default=None,
                        help="base seed for --batch (default: --seed); "
                             "printed so the batch is replayable")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for --batch (default 1); "
                             "seeds are drawn up front and outputs merged "
                             "in seed order, so results are identical for "
                             "any N")
    parser.add_argument("--update-corpus", action="store_true",
                        help="re-bless the pinned corpus trace hashes")
    parser.add_argument("--break-mode", default="",
                        choices=[""] + sorted(BREAK_MODES),
                        help="deliberately sabotage the protocol (oracle "
                             "self-test)")
    parser.add_argument("--out", default=".", metavar="DIR",
                        help="directory for failure artifacts (default .)")
    parser.add_argument("--shrink-runs", type=int, default=200,
                        help="max schedule executions the shrinker may "
                             "spend (default 200)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip minimization on failure")
    return parser


def _print_violations(result: SimRunResult) -> None:
    for v in result.violations:
        print(f"  VIOLATION [{v.oracle}] t={v.time:.3f} node={v.node}: "
              f"{v.message}")


def _fuzz_once(args: argparse.Namespace) -> int:
    schedule = generate_schedule(args.seed, args.steps,
                                 break_mode=args.break_mode,
                                 cache_nodes=getattr(args, "cache_nodes", 0),
                                 adversaries=getattr(args, "adversaries", 0),
                                 intents=getattr(args, "intents", False))
    print(f"seed={args.seed} steps={len(schedule.steps)} "
          f"horizon={schedule.horizon:g}s clients={schedule.n_clients} "
          f"epsilon={schedule.epsilon:.4f}"
          + (f" cache_nodes={schedule.cache_nodes}"
             if schedule.cache_nodes else "")
          + (f" adversaries={schedule.adversaries}"
             if schedule.adversaries else "")
          + (" intents=on" if schedule.intents else "")
          + (f" break_mode={schedule.break_mode}"
             if schedule.break_mode else ""))
    result = run_schedule(schedule)
    print(f"ops={result.ops_succeeded} trace_hash={result.trace_hash[:16]}…")
    if result.ok:
        print("clean: no oracle violations")
        return EXIT_CLEAN
    print(f"{len(result.violations)} violation(s) from "
          f"{result.oracle_names()}")
    _print_violations(result)

    minimized_schedule = schedule
    minimized_result = result
    if not args.no_shrink and schedule.steps:
        shrunk = shrink_schedule(schedule, result, max_runs=args.shrink_runs)
        minimized_schedule = shrunk.schedule
        minimized_result = shrunk.result
        print(f"shrunk {len(schedule.steps)} -> "
              f"{len(minimized_schedule.steps)} fault step(s) in "
              f"{shrunk.runs} run(s)"
              + ("" if shrunk.minimal else " (budget hit before 1-minimal)"))

    # Re-run the minimized schedule keeping the system for diagnostics.
    final = run_schedule(minimized_schedule, keep_system=True)
    assert final.system is not None
    timeline = render_lease_timeline(final.system)
    artifact = make_failure_artifact(
        schedule=minimized_schedule.to_dict(),
        violations=[v.to_dict() for v in final.violations],
        trace_hash=final.trace_hash,
        timeline=timeline,
        obs_document={"trace_kinds": final.system.trace.kinds()},
        generator_seed=args.seed, generator_steps=args.steps)
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, f"simtest-failure-seed{args.seed}.json")
    write_artifact(artifact, path)
    print(f"failure artifact: {path}")
    print(f"replay with: python -m repro.simtest --replay {path}")
    return EXIT_VIOLATIONS


def _replay(path: str) -> int:
    try:
        doc = load_artifact(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    schedule = Schedule.from_dict(doc["schedule"])
    result = run_schedule(schedule)
    expected = doc.get("trace_hash", "")
    print(f"replayed seed={schedule.seed} "
          f"steps={len(schedule.steps)}: trace_hash={result.trace_hash[:16]}…")
    _print_violations(result)
    if result.trace_hash != expected:
        print(f"NOT REPRODUCED: trace hash mismatch "
              f"(expected {expected[:16]}…)")
        return EXIT_VIOLATIONS
    print("reproduced: trace hash identical"
          + ("" if result.ok else f"; oracles fired: "
                                  f"{result.oracle_names()}"))
    return EXIT_CLEAN


def _corpus() -> int:
    outcomes = replay_corpus()
    if not outcomes:
        print("corpus is empty (bless it with --update-corpus)")
        return EXIT_USAGE
    bad = 0
    for outcome in outcomes:
        status = "ok"
        if not outcome.hash_matches:
            status = (f"HASH MISMATCH (expected "
                      f"{outcome.entry.trace_hash[:16]}…, got "
                      f"{outcome.result.trace_hash[:16]}…)")
        elif not outcome.result.ok:
            status = f"VIOLATIONS {outcome.result.oracle_names()}"
        print(f"  seed={outcome.entry.seed} "
              f"steps={outcome.entry.n_steps}: {status}")
        if not outcome.ok:
            bad += 1
            _print_violations(outcome.result)
    print(f"{len(outcomes) - bad}/{len(outcomes)} corpus entries clean")
    return EXIT_CLEAN if bad == 0 else EXIT_VIOLATIONS


def _batch(args: argparse.Namespace) -> int:
    base = args.batch_seed if args.batch_seed is not None else args.seed
    print(f"batch of {args.batch} run(s), batch seed {base} "
          f"(replay any failure with --seed <printed seed>)")
    # The full seed list is drawn up front from the batch stream, so the
    # schedules are identical regardless of --jobs; workers only change
    # who executes them.
    rng = RandomStreams(base).get("simtest.batch")
    seeds = [int(rng.integers(0, 2**31 - 1)) for _ in range(args.batch)]
    arg_map = dict(vars(args))
    tasks = [(i, seed, arg_map) for i, seed in enumerate(seeds)]
    outcomes = run_batch_parallel(tasks, args.jobs)
    failures = 0
    for i, outcome in enumerate(outcomes):
        print(f"-- batch run {i + 1}/{args.batch}: seed={outcome.seed}")
        sys.stdout.write(outcome.output)
        if outcome.exit_code != EXIT_CLEAN:
            failures += 1
    print(f"batch done: {args.batch - failures}/{args.batch} clean")
    return EXIT_CLEAN if failures == 0 else EXIT_VIOLATIONS


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to the selected mode."""
    parser = build_parser()
    args = parser.parse_args(argv)
    modes = [bool(args.replay), args.corpus, args.batch is not None,
             args.update_corpus]
    if sum(modes) > 1:
        parser.error("--replay/--corpus/--batch/--update-corpus are "
                     "mutually exclusive")  # exits 2
    if args.steps < 0:
        parser.error("--steps must be >= 0")
    if args.cache_nodes < 0:
        parser.error("--cache-nodes must be >= 0")
    if args.adversaries < 0:
        parser.error("--adversaries must be >= 0")
    if args.batch is not None and args.batch < 1:
        parser.error("--batch must be >= 1")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.jobs > 1 and args.batch is None:
        parser.error("--jobs requires --batch")
    if args.replay:
        return _replay(args.replay)
    if args.corpus:
        return _corpus()
    if args.update_corpus:
        entries = bless_corpus()
        for e in entries:
            print(f"  blessed seed={e.seed} steps={e.n_steps} "
                  f"hash={e.trace_hash[:16]}…")
        return EXIT_CLEAN
    if args.batch is not None:
        return _batch(args)
    return _fuzz_once(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
