"""Deterministic schedule fuzzing for the lease protocol.

``repro.simtest`` is the repo's Jepsen-style correctness engine: it
generates randomized fault+workload schedules (partitions, heals,
crashes and restarts, clock skew within ε, message-loss bursts) from a
single root seed, runs them against a full :class:`StorageTankSystem`
under a library of invariant *oracles*, and — when an oracle fires —
delta-debugs the fault schedule down to a minimal reproduction and
writes a replayable failure artifact.

The pieces:

- :mod:`repro.simtest.schedule` — the schedule data model and the
  seeded generator (every draw comes from ``RandomStreams``, so a
  schedule — and the run it produces — is a pure function of its seed);
- :mod:`repro.simtest.oracles` — the invariant library, each oracle
  mapped to a paper claim (DESIGN.md §12);
- :mod:`repro.simtest.runner` — builds the system, applies the
  schedule, drives workloads, checks oracles live and post-run, and
  produces a canonical event-trace hash;
- :mod:`repro.simtest.shrink` — ddmin-style schedule minimization;
- :mod:`repro.simtest.corpus` — the pinned regression-seed corpus
  replayed in tier-1;
- CLI: ``python -m repro.simtest --seed N --steps K`` (and
  ``--replay <artifact>``).
"""

from __future__ import annotations

from repro.simtest.oracles import Oracle, OracleViolation, default_oracles
from repro.simtest.runner import SimRunResult, run_schedule, trace_lines
from repro.simtest.schedule import FaultStep, Schedule, generate_schedule
from repro.simtest.shrink import shrink_schedule

__all__ = [
    "FaultStep",
    "Oracle",
    "OracleViolation",
    "Schedule",
    "SimRunResult",
    "default_oracles",
    "generate_schedule",
    "run_schedule",
    "shrink_schedule",
    "trace_lines",
]
