"""Multiprocessing support for ``repro.simtest --batch --jobs N``.

The parent draws the batch's seed list up front from the usual
``RandomStreams(batch_seed).get("simtest.batch")`` stream, so the seed
sequence — and therefore every schedule — is identical no matter how
many workers run it.  Each worker executes one whole fuzz run (generate,
run, shrink, write artifact) with its stdout captured, and the parent
prints the captured blocks in seed order: the merged output of
``--jobs N`` is byte-identical to ``--jobs 1``.

Workers live in this importable module (not ``__main__``) so the tasks
pickle under both fork and spawn start methods.  Workers never read the
wall clock; simulated time stays inside each run's kernel, and the only
wall timing around a batch is the parent's allowlisted
:func:`repro.harness.common.wall_timer`.
"""

from __future__ import annotations

import argparse
import io
from contextlib import redirect_stdout
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple


@dataclass(frozen=True)
class BatchRunOutcome:
    """One worker's captured fuzz run."""

    index: int
    seed: int
    exit_code: int
    output: str


def run_batch_task(task: Tuple[int, int, Dict[str, Any]]) -> BatchRunOutcome:
    """Execute one batch entry (worker entry point; must stay picklable).

    ``task`` is ``(index, seed, vars(args))`` — plain data only, so the
    pool can ship it to a spawned interpreter.
    """
    index, seed, arg_map = task
    # Imported here so a spawned worker pays the import once, and to keep
    # this module import-light for the parent's argument handling.
    from repro.simtest.cli import _fuzz_once

    sub = argparse.Namespace(**arg_map)
    sub.seed = seed
    sub.batch = None
    sub.jobs = 1
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = _fuzz_once(sub)
    return BatchRunOutcome(index=index, seed=seed, exit_code=code,
                           output=buf.getvalue())


def run_batch_parallel(tasks: List[Tuple[int, int, Dict[str, Any]]],
                       jobs: int) -> List[BatchRunOutcome]:
    """Run batch tasks across ``jobs`` worker processes, results in
    submission order regardless of completion order."""
    if jobs <= 1 or len(tasks) <= 1:
        return [run_batch_task(t) for t in tasks]
    import multiprocessing

    with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
        return list(pool.imap(run_batch_task, tasks))
