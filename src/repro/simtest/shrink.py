"""Delta-debugging schedule minimization.

When a fuzz run trips an oracle, the raw schedule usually carries dozens
of irrelevant fault steps.  :func:`shrink_schedule` reduces it with
ddmin (Zeller's delta debugging over the step list) followed by a
one-at-a-time removal pass, so the result is *1-minimal*: the failure
reproduces with the surviving steps, and removing any single one of
them makes it vanish.

The failure predicate is "re-running the candidate schedule (same seed,
same environment, same break mode) still fires at least one of the same
oracles" — deterministic replay makes this a pure function of the
candidate step list, so no flaky-shrink heuristics are needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.simtest.oracles import Oracle
from repro.simtest.runner import SimRunResult, run_schedule
from repro.simtest.schedule import FaultStep, Schedule


@dataclass
class ShrinkResult:
    """Outcome of one minimization."""

    schedule: Schedule           # the minimized schedule
    result: SimRunResult         # its (still-failing) run result
    runs: int = 0                # candidate executions spent
    removed: int = 0             # steps eliminated from the original

    @property
    def minimal(self) -> bool:
        """Whether the 1-minimality pass completed within budget."""
        return self._minimal

    _minimal: bool = field(default=False, repr=False)


def shrink_schedule(schedule: Schedule, failing: SimRunResult,
                    oracles: Optional[List[Oracle]] = None,
                    max_runs: int = 200) -> ShrinkResult:
    """Minimize a failing schedule's step list.

    ``failing`` is the original run result (used for the target oracle
    set); ``max_runs`` bounds the total candidate executions.  Returns
    the smallest still-failing schedule found.
    """
    target = set(failing.oracle_names())
    if not target:
        raise ValueError("shrink_schedule needs a failing run "
                         "(no oracle violations in `failing`)")
    budget = _Budget(max_runs)

    def fails(steps: Sequence[FaultStep]) -> Optional[SimRunResult]:
        """Run a candidate; the failing result if the failure persists."""
        if not budget.take():
            return None
        result = run_schedule(schedule.with_steps(steps), oracles=oracles)
        if target & set(result.oracle_names()):
            return result
        return None

    best_steps: Tuple[FaultStep, ...] = schedule.steps
    best_result = failing

    # -- ddmin ------------------------------------------------------------
    n = 2
    while len(best_steps) >= 2 and budget.left():
        chunks = _partition(best_steps, n)
        reduced = False
        # Try each chunk alone, then each complement.
        for candidate in chunks + [_complement(best_steps, c) for c in chunks]:
            if len(candidate) in (0, len(best_steps)):
                continue
            result = fails(candidate)
            if result is not None:
                best_steps = tuple(candidate)
                best_result = result
                n = max(2, min(n - 1, len(best_steps)))
                reduced = True
                break
        if not reduced:
            if n >= len(best_steps):
                break
            n = min(len(best_steps), n * 2)

    # -- 1-minimality: drop any single remaining step that is not needed --
    finished = True
    i = 0
    while i < len(best_steps):
        if not budget.left():
            finished = False
            break
        candidate = best_steps[:i] + best_steps[i + 1:]
        result = fails(candidate)
        if result is not None:
            best_steps = candidate
            best_result = result
            # restart the sweep: earlier steps may now be removable
            i = 0
        else:
            i += 1

    out = ShrinkResult(schedule=schedule.with_steps(best_steps),
                       result=best_result, runs=budget.used,
                       removed=len(schedule.steps) - len(best_steps))
    out._minimal = finished
    return out


class _Budget:
    """Counted run allowance."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def left(self) -> bool:
        return self.used < self.limit

    def take(self) -> bool:
        if not self.left():
            return False
        self.used += 1
        return True


def _partition(steps: Sequence[FaultStep], n: int) -> List[List[FaultStep]]:
    """Split into ``n`` contiguous chunks (sizes differ by at most 1)."""
    n = min(n, len(steps))
    out: List[List[FaultStep]] = []
    base, extra = divmod(len(steps), n)
    start = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        out.append(list(steps[start:start + size]))
        start += size
    return out


def _complement(steps: Sequence[FaultStep],
                chunk: Sequence[FaultStep]) -> List[FaultStep]:
    """``steps`` with the (contiguous) chunk removed, order preserved."""
    drop: Set[int] = {id(s) for s in chunk}
    return [s for s in steps if id(s) not in drop]
