"""The pinned regression-seed corpus.

``corpus.json`` (shipped next to this module) pins a handful of root
seeds together with the canonical trace hash each one produced when the
corpus was last blessed.  Tier-1 (and the CI ``simtest-fuzz`` job)
replays every entry and asserts two things:

1. no oracle fires (the protocol is still safe under those schedules);
2. the trace hash is bit-identical (the simulation is still
   deterministic — any drift in event ordering, RNG plumbing or trace
   emission shows up here before it can invalidate replayability).

When a legitimate change alters event traces (new trace kinds, protocol
fixes), re-bless with ``python -m repro.simtest --update-corpus`` and
review the hash diff like any other golden-file change.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.simtest.runner import SimRunResult, run_schedule
from repro.simtest.schedule import generate_schedule

#: Schema stamp for the corpus file.
CORPUS_SCHEMA = "repro.simtest.corpus/1.0"

#: Default on-disk location (inside the installed package).
CORPUS_PATH = os.path.join(os.path.dirname(__file__), "corpus.json")

#: The blessed (seed, n_steps, cache_nodes, adversaries, intents)
#: tuples.  Small step counts keep a full corpus replay inside the
#: tier-1 time budget.  The cache-enabled entries run the metadata
#: workload against the netcache tier (cache crash/flush fault kinds
#: join the pool), so the corpus also pins the cache coherence
#: machinery's event order.  The adversarial entries possess clients
#: with Byzantine behaviors and pin the containment machinery's event
#: order (fence, attested rejoin, demand escalation, chain demands) —
#: §6's backstop, fuzz-hardened.  The intent-enabled entries replay the
#: same fault generator against the batched protocol variant (intent
#: opens, deferred closes, LOCK_BATCH), pinning its wire-event order
#: and proving the discipline oracles hold with one-round-trip ops.
PINNED_RUNS = ((0, 12, 0, 0, False), (1, 12, 0, 0, False),
               (7, 16, 0, 0, False), (23, 16, 0, 0, False),
               (42, 20, 0, 0, False), (2, 10, 2, 0, False),
               (8, 10, 2, 0, False), (0, 12, 0, 2, False),
               (10, 12, 0, 2, False), (3, 12, 0, 0, True),
               (11, 12, 0, 2, True))


@dataclass(frozen=True)
class CorpusEntry:
    """One pinned regression run."""

    seed: int
    n_steps: int
    trace_hash: str
    cache_nodes: int = 0
    adversaries: int = 0
    intents: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (what ``corpus.json`` stores)."""
        return {"seed": self.seed, "n_steps": self.n_steps,
                "trace_hash": self.trace_hash,
                "cache_nodes": self.cache_nodes,
                "adversaries": self.adversaries,
                "intents": self.intents}


@dataclass
class ReplayOutcome:
    """Result of replaying one corpus entry."""

    entry: CorpusEntry
    result: SimRunResult

    @property
    def hash_matches(self) -> bool:
        return self.result.trace_hash == self.entry.trace_hash

    @property
    def ok(self) -> bool:
        return self.hash_matches and self.result.ok


def load_corpus(path: Optional[str] = None) -> List[CorpusEntry]:
    """Read the pinned corpus (empty if never blessed)."""
    corpus_path = path or CORPUS_PATH
    if not os.path.exists(corpus_path):
        return []
    with open(corpus_path, "r", encoding="utf-8") as fh:
        doc: Mapping[str, Any] = json.load(fh)
    if doc.get("schema") != CORPUS_SCHEMA:
        raise ValueError(f"{corpus_path}: expected schema "
                         f"{CORPUS_SCHEMA!r}, got {doc.get('schema')!r}")
    return [CorpusEntry(seed=int(e["seed"]), n_steps=int(e["n_steps"]),
                        trace_hash=str(e["trace_hash"]),
                        cache_nodes=int(e.get("cache_nodes", 0)),
                        adversaries=int(e.get("adversaries", 0)),
                        intents=bool(e.get("intents", False)))
            for e in doc.get("entries", [])]


def replay_entry(entry: CorpusEntry) -> ReplayOutcome:
    """Re-run one pinned seed and compare against its blessing."""
    schedule = generate_schedule(entry.seed, entry.n_steps,
                                 cache_nodes=entry.cache_nodes,
                                 adversaries=entry.adversaries,
                                 intents=entry.intents)
    return ReplayOutcome(entry=entry, result=run_schedule(schedule))


def replay_corpus(path: Optional[str] = None) -> List[ReplayOutcome]:
    """Replay every pinned entry."""
    return [replay_entry(e) for e in load_corpus(path)]


def bless_corpus(path: Optional[str] = None) -> List[CorpusEntry]:
    """Regenerate the corpus file from :data:`PINNED_RUNS`.

    Refuses to bless a run in which an oracle fired — the corpus pins
    *clean* runs; failing schedules belong in failure artifacts.
    """
    entries: List[CorpusEntry] = []
    for seed, n_steps, cache_nodes, adversaries, intents in PINNED_RUNS:
        result = run_schedule(generate_schedule(seed, n_steps,
                                                cache_nodes=cache_nodes,
                                                adversaries=adversaries,
                                                intents=intents))
        if not result.ok:
            raise ValueError(
                f"refusing to bless seed {seed}: oracles fired "
                f"({result.oracle_names()})")
        entries.append(CorpusEntry(seed=seed, n_steps=n_steps,
                                   trace_hash=result.trace_hash,
                                   cache_nodes=cache_nodes,
                                   adversaries=adversaries,
                                   intents=intents))
    doc = {"schema": CORPUS_SCHEMA,
           "entries": [e.to_dict() for e in entries]}
    with open(path or CORPUS_PATH, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return entries
