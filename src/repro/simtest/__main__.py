"""Entry point for ``python -m repro.simtest``."""

from __future__ import annotations

import sys

from repro.simtest.cli import main

if __name__ == "__main__":
    sys.exit(main())
