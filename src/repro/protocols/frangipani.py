"""Frangipani-style leases (paper §5).

Frangipani's lease is the closest relative of Storage Tank's: one lease
per computer protecting all its cached data.  The differences the paper
calls out — and this module reproduces — are:

- **heartbeats**: the client sends periodic explicit lease-renewal
  messages even while actively working (Storage Tank renews for free on
  existing traffic);
- **server state**: the locking authority stores a lease record per
  client at all times and refreshes it on every heartbeat (Storage
  Tank's authority stores nothing until a failure);
- loosely synchronized clocks instead of ordered events (modelled here
  by renewing from the server's receive time rather than the client's
  send time).

Experiments E7/E9 count the heartbeat traffic, the per-client state and
the per-message lease computation this design pays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from repro.client.node import StorageTankClient
from repro.net.message import DeliveryError, Message, MsgKind, NackError
from repro.protocols.base import SafetyAuthority
from repro.sim.events import Event

#: Approximate size of one per-client lease record.
LEASE_RECORD_BYTES = 48


@dataclass
class _LeaseRecord:
    client: str
    expiry_local: float


class FrangipaniAuthority(SafetyAuthority):
    """Heartbeat-lease authority with always-on per-client state."""

    def __init__(self, sim, endpoint, on_steal, trace=None, obs=None,
                 lease_duration: float = 30.0, check_interval: float = 1.0,
                 grace: float = 2.0):
        self.lease_duration = lease_duration
        self.check_interval = check_interval
        self.grace = grace
        self._table: Dict[str, _LeaseRecord] = {}
        self._resolutions: Dict[str, Event] = {}
        self._expired: Dict[str, bool] = {}
        super().__init__(sim, endpoint, on_steal, trace, obs=obs)
        endpoint.register(MsgKind.HEARTBEAT, self._h_heartbeat)
        sim.process(self._scan(), name=f"{endpoint.name}:frangipani-scan")

    # -- state & counters ------------------------------------------------
    def state_bytes(self) -> int:
        """Always-on footprint: one record per client ever seen."""
        return len(self._table) * LEASE_RECORD_BYTES

    def is_suspect(self, client: str) -> bool:
        """Whether the client's heartbeat lease has lapsed."""
        rec = self._table.get(client)
        if rec is None:
            return False
        return rec.expiry_local <= self.endpoint.local_now()

    def resolution(self, client: str) -> Optional[Event]:
        """Event firing when a pending steal of ``client`` completes."""
        return self._resolutions.get(client)

    # -- lease maintenance --------------------------------------------------
    def gatekeeper(self, msg: Message) -> Optional[str]:
        """Every inbound message touches the lease table (the per-message
        cost Storage Tank avoids)."""
        self._count_cpu()
        rec = self._table.get(msg.src)
        now_local = self.endpoint.local_now()
        if rec is None:
            self._table[msg.src] = _LeaseRecord(msg.src,
                                                now_local + self.lease_duration)
            return None
        if rec.expiry_local <= now_local:
            # Expired client: refuse service until the steal has finished,
            # then re-admit with a fresh lease.
            if msg.src in self._resolutions or not self._expired.get(msg.src, False):
                self._count_lease_msg()
                return "nack"
            self._expired.pop(msg.src, None)
        rec.expiry_local = now_local + self.lease_duration
        return None

    def _h_heartbeat(self, msg: Message):
        # Refreshing happened in the gatekeeper; the ACK is the reply.
        return ("ack", {"lease": self.lease_duration})

    def _scan(self) -> Generator[Event, Any, None]:
        while True:
            yield self.endpoint.local_timeout(self.check_interval)
            now_local = self.endpoint.local_now()
            for client, rec in list(self._table.items()):
                expired_for = now_local - rec.expiry_local
                if expired_for >= self.grace and not self._expired.get(client):
                    self._count_cpu()
                    self._expired[client] = True
                    ev = self.sim.event()
                    self._resolutions[client] = ev
                    self.trace.emit(self.sim.now, "frangipani.expire",
                                    self.endpoint.name, client=client)
                    try:
                        self.steal_now(client)
                    finally:
                        ev.succeed(client)
                        self._resolutions.pop(client, None)


class FrangipaniClientAgent:
    """Heartbeat daemon bolted onto a lease-less Storage Tank client."""

    def __init__(self, client: StorageTankClient, lease_duration: float = 30.0,
                 heartbeat_interval: float = 10.0):
        self.client = client
        self.lease_duration = lease_duration
        self.heartbeat_interval = heartbeat_interval
        self.heartbeats_sent = 0
        self._m_msgs = client.obs.registry.counter(
            "lease.client.msgs_sent", "Client-originated lease messages",
            labels=("node",)).labels(node=client.name)
        self._last_ack_local: Optional[float] = None
        self._expired = False
        # Frangipani clients check the lease before every operation
        # (first contact, before any heartbeat ACK, is the bootstrap).
        client.admission_check = (
            lambda: self.holds_lease or self._last_ack_local is None)
        client.sim.process(self._run(), name=f"{client.name}:heartbeat")
        client.sim.process(self._watch(), name=f"{client.name}:lease-watch")

    @property
    def holds_lease(self) -> bool:
        """Whether the client believes its lease is alive."""
        if self._last_ack_local is None:
            return False
        return (self.client.endpoint.local_now()
                < self._last_ack_local + self.lease_duration)

    def overhead_snapshot(self) -> Dict[str, float]:
        """Client-side lease overhead (heartbeat traffic)."""
        return {"heartbeats": float(self.heartbeats_sent),
                "lease_msgs_sent": float(self.heartbeats_sent)}

    def _run(self) -> Generator[Event, Any, None]:
        ep = self.client.endpoint
        while True:
            self.heartbeats_sent += 1
            self._m_msgs.inc()
            try:
                yield from ep.request(self.client.server, MsgKind.HEARTBEAT, {})
                self._last_ack_local = ep.local_now()
                self._expired = False
            except (DeliveryError, NackError):
                pass
            yield ep.local_timeout(self.heartbeat_interval)

    def _watch(self) -> Generator[Event, Any, None]:
        """Invalidate promptly when the lease lapses (checked at a much
        finer grain than the heartbeat period)."""
        ep = self.client.endpoint
        while True:
            yield ep.local_timeout(0.5)
            if (not self.holds_lease and not self._expired
                    and self._last_ack_local is not None):
                self._expired = True
                self.client.force_lease_expiry()
