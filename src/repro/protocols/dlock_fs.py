"""A GFS-flavoured client that synchronizes through device ``dlock``-s
(paper §5).

The Global File System takes *physical* range locks implemented by the
disk drive, with drive-enforced timeouts, instead of logical locks from
a locking authority.  This minimal client write-throughs under a dlock
and reads uncached, so its consistency relies entirely on the device:

- a failed client's dlock frees itself after its TTL (availability is
  bounded by the TTL, not by a server decision);
- there is no cache, hence no cache-coherence guarantee to lose — which
  is also why the paper finds dlocks "not adequate" for Storage Tank's
  cached, logically-locked design.

Used by experiment E10 as the device-timeout point of comparison.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, List, Optional, Tuple

from repro.net.san import SanFabric, SanUnreachableError
from repro.sim.clock import LocalClock
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder
from repro.storage.dlock import DlockDeniedError
from repro.storage.disk import FencedIoError


class DlockClient:
    """Write-through client synchronized by device range locks."""

    def __init__(self, sim: Simulator, san: SanFabric, name: str,
                 device: str, clock: LocalClock,
                 dlock_ttl: float = 15.0,
                 retry_backoff: float = 0.2,
                 max_retries: int = 50,
                 trace: Optional[TraceRecorder] = None):
        self.sim = sim
        self.san = san
        self.name = name
        self.device = device
        self.clock = clock
        self.dlock_ttl = dlock_ttl
        self.retry_backoff = retry_backoff
        self.max_retries = max_retries
        self.trace = trace if trace is not None else san.trace
        san.attach_initiator(name)
        self._write_seq = itertools.count(1)
        self.ops_completed = 0
        self.denials = 0
        self.app_errors = 0

    def _device_now(self) -> float:
        # The TTL counter runs on the *device's* clock; we approximate the
        # device clock as the global timeline (drives have no skew model
        # of their own in this reproduction).
        return self.sim.now

    def write_range(self, start_lba: int, n_blocks: int,
                    ) -> Generator[Event, Any, Optional[str]]:
        """dlock-acquire, write through, release; returns the tag or None
        when the lock could not be obtained."""
        for _attempt in range(self.max_retries):
            try:
                yield from self.san.dlock_acquire(self.name, self.device,
                                                  start_lba, n_blocks,
                                                  self.dlock_ttl,
                                                  self._device_now())
                break
            except DlockDeniedError:
                self.denials += 1
                yield self.sim.timeout(self.retry_backoff)
            except (SanUnreachableError, FencedIoError):
                self.app_errors += 1
                return None
        else:
            self.app_errors += 1
            return None
        tag = f"{self.name}:d{next(self._write_seq)}"
        try:
            yield from self.san.write(self.name, self.device,
                                      {lba: tag for lba in
                                       range(start_lba, start_lba + n_blocks)})
            self.trace.emit(self.sim.now, "app.write.ack", self.name,
                            tag=tag, blocks=list(range(start_lba,
                                                       start_lba + n_blocks)))
            self.ops_completed += 1
        except (SanUnreachableError, FencedIoError):
            self.app_errors += 1
            return None
        finally:
            try:
                yield from self.san.dlock_release(self.name, self.device,
                                                  start_lba, n_blocks,
                                                  self._device_now())
            except (SanUnreachableError, FencedIoError):
                pass  # the TTL will free it
        return tag

    def read_range(self, start_lba: int, n_blocks: int,
                   ) -> Generator[Event, Any, List[Tuple[int, Optional[str]]]]:
        """Uncached read of a block range."""
        recs = yield from self.san.read(self.name, self.device,
                                        start_lba, n_blocks)
        out = [(r.lba, r.tag) for r in recs]
        for lba, tag in out:
            self.trace.emit(self.sim.now, "app.read", self.name,
                            block=lba, tag=tag)
        self.ops_completed += 1
        return out
