"""Name-based protocol registry mapping config names to factories.

``repro.protocols.get("frangipani")`` returns a :class:`ProtocolSpec`
describing how ``core.system.build_system`` assembles that protocol:
which :class:`~repro.protocols.base.SafetyAuthority` guards the server,
what kind of client to build, whether clients run the Storage Tank
lease state machine, whether fencing is forced on or off, and which
client-side agent (heartbeater, renewer) to attach.

Factory callables import their protocol modules lazily so merely
importing the registry (as ``core.config`` validation paths do,
transitively) never drags in client/server code — that would cycle.

Third parties can :func:`register` additional specs; names must be
unique.  The seven built-in protocols mirror
``repro.core.config.PROTOCOLS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

#: (cfg, server) -> SafetyAuthority
AuthorityFactory = Callable[[Any, Any], Any]
#: (cfg, client) -> client-side agent
AgentFactory = Callable[[Any, Any], Any]


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything ``build_system`` needs to assemble one protocol."""

    name: str
    summary: str
    authority: AuthorityFactory
    client_kind: str = "storage_tank"  # or "nfs"
    uses_leases: bool = False
    fence_on_steal: Optional[bool] = None  # None -> respect cfg.fence_on_steal
    agent: Optional[AgentFactory] = None


_REGISTRY: Dict[str, ProtocolSpec] = {}


def register(spec: ProtocolSpec) -> ProtocolSpec:
    """Add a spec to the registry; duplicate names are an error."""
    if spec.name in _REGISTRY:
        raise ValueError(f"protocol {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ProtocolSpec:
    """Look up a protocol spec by config name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; available: {available()}") from None


def available() -> Tuple[str, ...]:
    """All registered protocol names, sorted."""
    return tuple(sorted(_REGISTRY))


# -- built-in specs --------------------------------------------------------

def _storage_tank_authority(cfg: Any, server: Any) -> Any:
    from repro.lease.server_lease import ServerLeaseAuthority
    return ServerLeaseAuthority(
        server.sim, server.endpoint, server.contract,
        on_steal=server.steal_client, trace=server.trace, obs=server.obs)


def _no_protocol_authority(cfg: Any, server: Any) -> Any:
    from repro.protocols.base import NoStealAuthority
    return NoStealAuthority(server.sim, server.endpoint,
                            on_steal=server.steal_client,
                            trace=server.trace, obs=server.obs)


def _naive_steal_authority(cfg: Any, server: Any) -> Any:
    from repro.protocols.steal import ImmediateStealAuthority
    return ImmediateStealAuthority(server.sim, server.endpoint,
                                   on_steal=server.steal_client,
                                   trace=server.trace, obs=server.obs)


def _fencing_only_authority(cfg: Any, server: Any) -> Any:
    from repro.protocols.fencing_only import FencingOnlyAuthority
    return FencingOnlyAuthority(server.sim, server.endpoint,
                                on_steal=server.steal_client,
                                trace=server.trace, obs=server.obs)


def _frangipani_authority(cfg: Any, server: Any) -> Any:
    from repro.protocols.frangipani import FrangipaniAuthority
    return FrangipaniAuthority(server.sim, server.endpoint,
                               on_steal=server.steal_client,
                               trace=server.trace, obs=server.obs,
                               lease_duration=cfg.lease.tau,
                               check_interval=1.0)


def _vleases_authority(cfg: Any, server: Any) -> Any:
    from repro.protocols.vleases import VLeaseAuthority
    return VLeaseAuthority(server.sim, server.endpoint,
                           on_steal=server.steal_client,
                           trace=server.trace, obs=server.obs,
                           server=server,
                           object_lease_duration=cfg.vlease_object_duration)


def _frangipani_agent(cfg: Any, client: Any) -> Any:
    from repro.protocols.frangipani import FrangipaniClientAgent
    return FrangipaniClientAgent(client, lease_duration=cfg.lease.tau,
                                 heartbeat_interval=cfg.frangipani_heartbeat)


def _vleases_agent(cfg: Any, client: Any) -> Any:
    from repro.protocols.vleases import VLeaseClientAgent
    return VLeaseClientAgent(
        client, object_lease_duration=cfg.vlease_object_duration)


register(ProtocolSpec(
    name="storage_tank",
    summary="the paper's passive server lease authority (zero-cost E7)",
    authority=_storage_tank_authority, uses_leases=True))
register(ProtocolSpec(
    name="no_protocol",
    summary="honor locks of unreachable clients forever (§2 strawman)",
    authority=_no_protocol_authority, fence_on_steal=False))
register(ProtocolSpec(
    name="naive_steal",
    summary="steal on delivery failure without fencing (unsafe, §1.2)",
    authority=_naive_steal_authority, fence_on_steal=False))
register(ProtocolSpec(
    name="fencing_only",
    summary="fence then steal immediately (§2.1's accepted solution)",
    authority=_fencing_only_authority, fence_on_steal=True))
register(ProtocolSpec(
    name="frangipani",
    summary="heartbeat leases with per-client server state (§5)",
    authority=_frangipani_authority, agent=_frangipani_agent))
register(ProtocolSpec(
    name="vleases",
    summary="V-system per-object leases with renewal traffic (§4)",
    authority=_vleases_authority, agent=_vleases_agent))
register(ProtocolSpec(
    name="nfs",
    summary="attribute polling without locks (incoherent, §5)",
    authority=_no_protocol_authority, client_kind="nfs",
    fence_on_steal=False))
