"""Comparison protocols from the paper's related-work discussion.

Server-side *safety authorities* (plug into
:class:`repro.server.node.StorageTankServer`):

- :class:`~repro.protocols.base.NoStealAuthority` — honor locks of
  unreachable clients indefinitely (§2's unavailability strawman);
- :class:`~repro.protocols.steal.ImmediateStealAuthority` — steal on
  delivery failure, as server-marshalled file systems safely do and SAN
  file systems unsafely would (§1.2);
- :class:`~repro.protocols.fencing_only.FencingOnlyAuthority` — fence
  then steal immediately, the "currently accepted solution" §2.1 argues
  is inadequate;
- :class:`~repro.protocols.frangipani.FrangipaniAuthority` — heartbeat
  leases with per-client server state (§5);
- :class:`~repro.protocols.vleases.VLeaseAuthority` — V-system
  per-object leases with per-object server state (§4).

Client-side companions where the protocol changes client behaviour:
:class:`~repro.protocols.frangipani.FrangipaniClientAgent` (periodic
heartbeats), :class:`~repro.protocols.vleases.VLeaseClientAgent`
(per-object renewal traffic), and
:class:`~repro.protocols.nfs_polling.NfsPollingClient` (attribute
polling without locks, incoherent by design, §5).
"""

from repro.protocols.base import NoStealAuthority, SafetyAuthority
from repro.protocols.steal import ImmediateStealAuthority
from repro.protocols.fencing_only import FencingOnlyAuthority
from repro.protocols.frangipani import FrangipaniAuthority, FrangipaniClientAgent
from repro.protocols.vleases import VLeaseAuthority, VLeaseClientAgent
from repro.protocols.nfs_polling import NfsPollingClient
from repro.protocols.dlock_fs import DlockClient

__all__ = [
    "DlockClient",
    "FencingOnlyAuthority",
    "FrangipaniAuthority",
    "FrangipaniClientAgent",
    "ImmediateStealAuthority",
    "NfsPollingClient",
    "NoStealAuthority",
    "SafetyAuthority",
    "VLeaseAuthority",
    "VLeaseClientAgent",
]
