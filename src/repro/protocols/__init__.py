"""Comparison protocols from the paper's related-work discussion.

Protocol registry
-----------------
Protocols are looked up by config name through a registry::

    from repro import protocols
    spec = protocols.get("frangipani")   # -> ProtocolSpec
    protocols.available()                # all registered names

A :class:`~repro.protocols.registry.ProtocolSpec` bundles the
authority factory, client kind, lease usage, fencing policy and
optional client agent factory for one protocol; ``build_system``
assembles systems purely from the spec, so adding a protocol means
registering a spec (:func:`~repro.protocols.registry.register`) — no
``core.system`` edits.  All authorities subclass
:class:`~repro.protocols.base.SafetyAuthority`; all client-side
participants conform to :class:`~repro.protocols.base.ClientAgent`.

Built-in server-side *safety authorities* (plug into
:class:`repro.server.node.StorageTankServer`):

- :class:`~repro.protocols.base.NoStealAuthority` — honor locks of
  unreachable clients indefinitely (§2's unavailability strawman);
- :class:`~repro.protocols.steal.ImmediateStealAuthority` — steal on
  delivery failure, as server-marshalled file systems safely do and SAN
  file systems unsafely would (§1.2);
- :class:`~repro.protocols.fencing_only.FencingOnlyAuthority` — fence
  then steal immediately, the "currently accepted solution" §2.1 argues
  is inadequate;
- :class:`~repro.protocols.frangipani.FrangipaniAuthority` — heartbeat
  leases with per-client server state (§5);
- :class:`~repro.protocols.vleases.VLeaseAuthority` — V-system
  per-object leases with per-object server state (§4).

Client-side companions where the protocol changes client behaviour:
:class:`~repro.protocols.frangipani.FrangipaniClientAgent` (periodic
heartbeats), :class:`~repro.protocols.vleases.VLeaseClientAgent`
(per-object renewal traffic), and
:class:`~repro.protocols.nfs_polling.NfsPollingClient` (attribute
polling without locks, incoherent by design, §5).

Submodules are imported lazily (PEP 562) so that importing this
package — which protocol implementations themselves do transitively —
never recurses back into client/server modules mid-initialisation.
"""

from repro.protocols.registry import ProtocolSpec, available, get, register

_EXPORTS = {
    "ClientAgent": "repro.protocols.base",
    "DlockClient": "repro.protocols.dlock_fs",
    "FencingOnlyAuthority": "repro.protocols.fencing_only",
    "FrangipaniAuthority": "repro.protocols.frangipani",
    "FrangipaniClientAgent": "repro.protocols.frangipani",
    "ImmediateStealAuthority": "repro.protocols.steal",
    "NfsPollingClient": "repro.protocols.nfs_polling",
    "NoStealAuthority": "repro.protocols.base",
    "SafetyAuthority": "repro.protocols.base",
    "VLeaseAuthority": "repro.protocols.vleases",
    "VLeaseClientAgent": "repro.protocols.vleases",
}

__all__ = sorted(_EXPORTS) + ["ProtocolSpec", "available", "get", "register"]


def __getattr__(name):
    """Resolve protocol classes lazily from their defining modules."""
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    """Advertise lazy exports alongside the module's real globals."""
    return sorted(set(globals()) | set(_EXPORTS))
