"""Naive lock stealing (paper §1.2).

Traditional client/server file systems (AFS, Sprite, DEcorum) steal
locks from unreachable clients *safely*, because all I/O funnels through
the server: an isolated client can hold whatever lock state it likes —
it cannot reach the data.  On network attached storage the same policy
is **unsafe**: the isolated client keeps writing to shared disks, so the
old and new holders act concurrently on the same data.  Experiment E3/E9
runs this authority on the SAN substrate and lets the consistency audit
catch the resulting multi-writer violations (invariant I4).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.message import Message
from repro.protocols.base import SafetyAuthority
from repro.sim.events import Event


class ImmediateStealAuthority(SafetyAuthority):
    """Steal the instant a delivery failure is observed."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._resolutions: Dict[str, Event] = {}

    def _on_delivery_failure(self, client: str, msg: Message) -> None:
        self._count_cpu()
        self.trace.emit(self.sim.now, "authority.immediate_steal",
                        self.endpoint.name, client=client)
        ev = self.sim.event()
        self._resolutions[client] = ev
        try:
            self.steal_now(client)
        finally:
            ev.succeed(client)
            self._resolutions.pop(client, None)

    def resolution(self, client: str) -> Optional[Event]:
        """Event firing when a pending steal of ``client`` completes."""
        return self._resolutions.get(client)
