"""Fence-then-steal recovery — the "currently accepted solution" the
paper's §2.1 dismantles.

On a delivery failure the server immediately instructs the storage
devices to stop serving the client, then steals its locks and hands
them out.  This prevents concurrent conflicting writes, but:

1. dirty write-back data on the isolated client is *stranded* — it can
   never reach disk, and a new reader sees the old version (lost
   update, invariant I2);
2. the isolated client does not learn anything until its next SAN I/O
   — local processes keep reading and writing a stale cache with no
   error reported (stale reads, invariant I3).

Experiment E3 measures both failure modes against the lease protocol.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.message import Message
from repro.protocols.base import SafetyAuthority
from repro.sim.events import Event


class FencingOnlyAuthority(SafetyAuthority):
    """Fence at the devices, then steal, with no lease wait.

    The fence itself is constructed by the server's ``steal_client``
    (``fence_on_steal`` must be on — the builder enforces it); what this
    authority removes relative to Storage Tank is the τ(1+ε) grace
    period that lets the client flush and invalidate first.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._resolutions: Dict[str, Event] = {}

    def _on_delivery_failure(self, client: str, msg: Message) -> None:
        self._count_cpu()
        self.trace.emit(self.sim.now, "authority.fence_steal",
                        self.endpoint.name, client=client)
        ev = self.sim.event()
        self._resolutions[client] = ev
        try:
            self.steal_now(client)   # steal_client fences first
        finally:
            ev.succeed(client)
            self._resolutions.pop(client, None)

    def resolution(self, client: str) -> Optional[Event]:
        """Event firing when a pending steal of ``client`` completes."""
        return self._resolutions.get(client)
