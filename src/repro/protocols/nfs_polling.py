"""NFS-style attribute polling (paper §5).

"Clients poll the server to find out when the file was last modified,
and determine whether the cached version is valid.  This scheme cannot
keep caches coherent.  However, it is simple in that servers keep no
lock state and do nothing when a failure occurs."

This client takes no locks at all.  Reads are served from cache while
the cached attributes are younger than ``attr_ttl`` (local clock); a
poll (GETATTR) revalidates, and a version change invalidates the file's
pages.  Writes are write-back with flush-on-close plus an attribute
touch so other pollers eventually notice (close-to-open-ish).

*Substitution note* (see DESIGN.md): real NFS ships data through the
server; to keep the E9 comparison about coherence traffic and staleness
on one substrate, this client still reads/writes the SAN directly.  The
polling cost and the staleness window — what the paper cites NFS for —
are preserved.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.client.cache import Page, PageCache
from repro.client.openfile import FdTable, OpenFile
from repro.locks.modes import LockMode
from repro.metadata.inode import FileAttributes
from repro.net.control import ControlNetwork, Endpoint, RetryPolicy
from repro.net.message import DeliveryError, MsgKind, NackError
from repro.net.san import SanFabric, SanUnreachableError
from repro.obs import Observability
from repro.sim.clock import LocalClock
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder
from repro.storage.blockmap import byte_range_to_blocks, extents_from_payload
from repro.storage.disk import FencedIoError


class NfsPollingClient:
    """A lock-less, polling client on the shared substrate."""

    def __init__(self, sim: Simulator, net: ControlNetwork, san: SanFabric,
                 name: str, server: str, clock: LocalClock,
                 attr_ttl: float = 3.0,
                 trace: Optional[TraceRecorder] = None,
                 obs: Optional[Observability] = None):
        self.sim = sim
        self.san = san
        self.name = name
        self.server = server
        self.attr_ttl = attr_ttl
        self.trace = trace if trace is not None else net.trace
        self.obs = obs if obs is not None else Observability()
        self.endpoint = Endpoint(sim, net, name, clock, trace=self.trace,
                                 default_policy=RetryPolicy(timeout=1.0, retries=3))
        self.endpoint.obs = self.obs
        san.attach_initiator(name)
        self.cache = PageCache()
        self.fds = FdTable()
        self._write_seq = itertools.count(1)
        self._checked_at: Dict[int, float] = {}   # file_id -> local poll time
        self.polls_sent = 0
        self.ops_completed = 0
        self.app_errors = 0
        self._m_lease_msgs = self.obs.registry.counter(
            "lease.client.msgs_sent", "Client-originated lease messages",
            labels=("node",)).labels(node=name)

    def overhead_snapshot(self) -> Dict[str, float]:
        """Client-side counters for E7/E9 (``ClientAgent`` conformance)."""
        return {
            "ops_completed": float(self.ops_completed),
            "app_errors": float(self.app_errors),
            "polls_sent": float(self.polls_sent),
            "lease_msgs_sent": float(self.polls_sent),
        }

    # -- API (process generators) ---------------------------------------
    def create(self, path: str, size: int = 0) -> Generator[Event, Any, int]:
        """Create a file on the server."""
        reply = yield from self._rpc(MsgKind.CREATE, {"path": path, "size": size})
        return int(reply.payload["file_id"])

    def open_file(self, path: str, mode: str = "r") -> Generator[Event, Any, int]:
        """Open without any lock (``nolock``); returns a descriptor."""
        reply = yield from self._rpc(MsgKind.OPEN,
                                     {"path": path, "mode": mode, "nolock": True})
        p = reply.payload
        of = self.fds.install(path, int(p["file_id"]), mode,
                              FileAttributes.from_payload(p["attrs"]),
                              extents_from_payload(p["extents"]),
                              LockMode.NONE)
        self._checked_at[of.file_id] = self.endpoint.local_now()
        self.ops_completed += 1
        return of.fd

    def read(self, fd: int, offset: int, nbytes: int,
             ) -> Generator[Event, Any, List[Tuple[int, Optional[str]]]]:
        """Read a byte range; revalidates attributes first if stale."""
        of = self.fds.get(fd)
        yield from self._revalidate(of)
        first, count = byte_range_to_blocks(offset, nbytes)
        out: List[Tuple[int, Optional[str]]] = []
        for lb in range(first, first + count):
            page = self.cache.get(of.file_id, lb)
            if page is not None:
                out.append((lb, page.tag))
                continue
            device, lba = of.resolve(lb)
            recs = yield from self.san.read(self.name, device, lba, 1)
            rec = recs[0]
            self.cache.put_clean(Page(file_id=of.file_id, logical_block=lb,
                                      device=device, lba=lba, tag=rec.tag,
                                      version=rec.version))
            out.append((lb, rec.tag))
        for lb, tag in out:
            device, lba = of.resolve(lb)
            self.trace.emit(self.sim.now, "app.read", self.name,
                            file_id=of.file_id, block=lb, tag=tag,
                            device=device, lba=lba)
        self.ops_completed += 1
        return out

    def write(self, fd: int, offset: int, nbytes: int,
              ) -> Generator[Event, Any, str]:
        """Write into the cache; hardened on close/flush."""
        of = self.fds.get(fd)
        end = offset + nbytes
        if end > of.extents.size_bytes:
            reply = yield from self._rpc(MsgKind.SETATTR,
                                         {"file_id": of.file_id, "size": end})
            of.attrs = FileAttributes.from_payload(reply.payload["attrs"])
            of.extents = extents_from_payload(reply.payload["extents"])
        tag = f"{self.name}:w{next(self._write_seq)}"
        first, count = byte_range_to_blocks(offset, nbytes)
        phys = []
        for lb in range(first, first + count):
            device, lba = of.resolve(lb)
            self.cache.write_dirty(of.file_id, lb, device, lba, tag)
            phys.append((device, lba))
        self.trace.emit(self.sim.now, "app.write.ack", self.name,
                        file_id=of.file_id, tag=tag,
                        blocks=list(range(first, first + count)),
                        phys=phys)
        self.ops_completed += 1
        return tag

    def close(self, fd: int) -> Generator[Event, Any, None]:
        """Flush-on-close plus an attribute touch (close-to-open)."""
        of = self.fds.get(fd)
        yield from self.flush_file(of.file_id)
        try:
            yield from self._rpc(MsgKind.SETATTR, {"file_id": of.file_id})
        except (DeliveryError, NackError):
            pass
        self.fds.close(fd)
        self.ops_completed += 1

    def flush_file(self, file_id: int) -> Generator[Event, Any, int]:
        """Harden one file's dirty pages to the SAN."""
        flushed = 0
        by_device: Dict[str, List[Page]] = {}
        for p in self.cache.dirty_pages(file_id):
            by_device.setdefault(p.device, []).append(p)
        for device, pages in by_device.items():
            block_tags = {p.lba: p.tag for p in pages if p.tag is not None}
            try:
                versions = yield from self.san.write(self.name, device, block_tags)
            except (FencedIoError, SanUnreachableError) as exc:
                for p in pages:
                    self.app_errors += 1
                    self.trace.emit(self.sim.now, "app.error", self.name,
                                    file_id=p.file_id, tag=p.tag,
                                    reason=type(exc).__name__)
                self.cache.invalidate_file(file_id)
                continue
            for p in pages:
                self.cache.mark_flushed(p, versions.get(p.lba, -1))
                self.trace.emit(self.sim.now, "cache.flushed", self.name,
                                file_id=p.file_id, tag=p.tag,
                                block=p.logical_block, device=p.device, lba=p.lba)
                flushed += 1
        return flushed

    # -- internals -----------------------------------------------------------
    def _rpc(self, kind: str, payload: Dict[str, Any]):
        return (yield from self.endpoint.request(self.server, kind, payload))

    def _revalidate(self, of: OpenFile) -> Generator[Event, Any, None]:
        now_local = self.endpoint.local_now()
        checked = self._checked_at.get(of.file_id)
        if checked is not None and now_local - checked < self.attr_ttl:
            return
        self.polls_sent += 1
        self._m_lease_msgs.inc()
        self.trace.emit(self.sim.now, "nfs.poll", self.name, file_id=of.file_id)
        try:
            reply = yield from self._rpc(MsgKind.OPEN,
                                         {"path": of.path, "mode": of.mode,
                                          "nolock": True})
        except (DeliveryError, NackError):
            return  # keep serving the (possibly stale) cache, as NFS does
        attrs = FileAttributes.from_payload(reply.payload["attrs"])
        if attrs.version != of.attrs.version:
            self.cache.invalidate_file(of.file_id)
            of.extents = extents_from_payload(reply.payload["extents"])
        of.attrs = attrs
        self._checked_at[of.file_id] = self.endpoint.local_now()
