"""The explicit safety-authority interface and client-agent protocol.

A *safety authority* is the server-side policy deciding when it is safe
to steal an unreachable client's locks.  The Storage Tank lease
authority (:class:`repro.lease.server_lease.ServerLeaseAuthority`) is
the paper's answer; the other authorities in this package are the
alternatives it argues against.  All of them subclass
:class:`SafetyAuthority`, whose surface the server consumes:

``is_suspect(client)``
    whether the client is currently being timed out / excluded;
``resolution(client)``
    an event that fires when the client's locks have been stolen
    (None when nothing is pending);
``gatekeeper(msg)``
    inbound-message veto, installed on the endpoint by this base class
    (return ``None`` to admit, ``"nack"`` / ``"silent"`` to refuse);
``overhead_snapshot()``
    the E7/E9 overhead counters — ``state_bytes``, ``lease_cpu_ops``,
    ``lease_msgs_sent``, ``total_steals`` — sourced from the metrics
    registry (:mod:`repro.obs.registry`).

Overhead accounting goes through the registry: subclasses call
:meth:`SafetyAuthority._count_cpu` / :meth:`_count_lease_msg` instead of
bumping bespoke attributes.  The legacy ``lease_cpu_ops`` /
``lease_msgs_sent`` attributes remain readable as deprecated properties.

:class:`ClientAgent` is the client-side counterpart: the structural
type of everything living in a ``StorageTankSystem``'s client pool
(clients, heartbeaters, renewers) — anything that can report its own
``overhead_snapshot()``.
"""

from __future__ import annotations

import abc
import warnings
from typing import (Callable, Dict, Mapping, Optional, Protocol,
                    runtime_checkable)

from repro.net.control import Endpoint
from repro.net.message import Message
from repro.obs import Observability
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder

#: Registry metric names for the server-side overhead trio (E7/E9).
CPU_OPS_METRIC = "lease.server.cpu_ops"
MSGS_SENT_METRIC = "lease.server.msgs_sent"
STATE_BYTES_METRIC = "lease.server.state_bytes"
STEALS_METRIC = "lease.server.steals"


@runtime_checkable
class ClientAgent(Protocol):
    """Structural type for client-side participants of a system.

    Clients (``StorageTankClient``, ``NfsPollingClient``) and protocol
    agents (Frangipani heartbeater, V-lease renewer) all conform.  The
    protocol is methods-only so ``isinstance`` checks work under
    ``runtime_checkable``.
    """

    def overhead_snapshot(self) -> Mapping[str, float]:
        """Client-side overhead counters (``lease_msgs_sent`` et al.)."""
        ...


class SafetyAuthority(abc.ABC):
    """Base class wiring an authority to a server endpoint.

    Concrete but deliberately inert: the base authority never suspects
    and never steals, which makes it (via :class:`NoStealAuthority`)
    the honor-locks-forever baseline.  Subclasses override
    :meth:`gatekeeper`, :meth:`_on_delivery_failure`, :meth:`is_suspect`
    and :meth:`resolution` to implement real policies.
    """

    def __init__(self, sim: Simulator, endpoint: Endpoint,
                 on_steal: Callable[[str], None],
                 trace: Optional[TraceRecorder] = None,
                 obs: Optional[Observability] = None):
        self.sim = sim
        self.endpoint = endpoint
        self.on_steal = on_steal
        self.trace = trace if trace is not None else endpoint.trace
        self.obs = obs if obs is not None else Observability()
        reg = self.obs.registry
        node = endpoint.name
        self._m_cpu = reg.counter(
            CPU_OPS_METRIC, "Server CPU operations spent on lease upkeep",
            labels=("node",)).labels(node=node)
        self._m_msgs = reg.counter(
            MSGS_SENT_METRIC, "Server-originated lease protocol messages",
            labels=("node",)).labels(node=node)
        self._m_steals = reg.counter(
            STEALS_METRIC, "Lock steals executed by the authority",
            labels=("node",)).labels(node=node)
        reg.gauge(
            STATE_BYTES_METRIC, "Authority memory footprint right now",
            labels=("node",)).labels(node=node).set_function(self.state_bytes)
        self.total_steals = 0
        endpoint.delivery_failure_listeners.append(self._on_delivery_failure)
        endpoint.set_gatekeeper(self.gatekeeper)

    # -- interface ---------------------------------------------------------
    def is_suspect(self, client: str) -> bool:
        """Whether the client is currently excluded from service."""
        return False

    def resolution(self, client: str) -> Optional[Event]:
        """Event firing when a pending steal of ``client`` completes."""
        return None

    def state_bytes(self) -> int:
        """Authority memory footprint right now."""
        return 0

    def gatekeeper(self, msg: Message) -> Optional[str]:
        """Inbound-message veto: None admits; "nack"/"silent" refuse."""
        return None

    def overhead_snapshot(self) -> Dict[str, float]:
        """The E7/E9 overhead counters, read from the metrics registry."""
        return {
            "state_bytes": float(self.state_bytes()),
            "lease_cpu_ops": self._m_cpu.value,
            "lease_msgs_sent": self._m_msgs.value,
            "total_steals": float(self.total_steals),
        }

    def _on_delivery_failure(self, client: str, msg: Message) -> None:
        """A server-initiated message went unACKed after retries."""

    def steal_now(self, client: str) -> None:
        """Immediately execute a steal via the server callback."""
        self.total_steals += 1
        self._m_steals.inc()
        self.on_steal(client)

    # -- accounting --------------------------------------------------------
    def _count_cpu(self, n: int = 1) -> None:
        """Charge ``n`` lease CPU operations to the registry."""
        self._m_cpu.inc(n)

    def _count_lease_msg(self, n: int = 1) -> None:
        """Charge ``n`` server-originated lease messages to the registry."""
        self._m_msgs.inc(n)

    # -- deprecated attribute shims ---------------------------------------
    @property
    def lease_cpu_ops(self) -> int:
        """Deprecated alias for the ``lease.server.cpu_ops`` metric."""
        warnings.warn(
            "SafetyAuthority.lease_cpu_ops is deprecated; read "
            "overhead_snapshot()['lease_cpu_ops'] or the "
            f"'{CPU_OPS_METRIC}' registry metric",
            DeprecationWarning, stacklevel=2)
        return int(self._m_cpu.value)

    @property
    def lease_msgs_sent(self) -> int:
        """Deprecated alias for the ``lease.server.msgs_sent`` metric."""
        warnings.warn(
            "SafetyAuthority.lease_msgs_sent is deprecated; read "
            "overhead_snapshot()['lease_msgs_sent'] or the "
            f"'{MSGS_SENT_METRIC}' registry metric",
            DeprecationWarning, stacklevel=2)
        return int(self._m_msgs.value)


class NoStealAuthority(SafetyAuthority):
    """Never steal: honor the locks of unreachable clients indefinitely.

    The paper's §2 example outcome — "something as simple as a network
    partition can render major portions of a file system unavailable
    indefinitely."  Experiment E2 measures exactly that.
    """

    def _on_delivery_failure(self, client: str, msg: Message) -> None:
        self.trace.emit(self.sim.now, "authority.honor", self.endpoint.name,
                        client=client)
