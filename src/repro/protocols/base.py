"""The safety-authority interface and the honor-locks-forever baseline.

A *safety authority* is the server-side policy deciding when it is safe
to steal an unreachable client's locks.  The Storage Tank lease
authority (:class:`repro.lease.server_lease.ServerLeaseAuthority`) is
the paper's answer; the classes in this package are the alternatives it
argues against.  All authorities expose the same duck-typed surface the
server consumes:

``is_suspect(client)``
    whether the client is currently being timed out / excluded;
``resolution(client)``
    an event that fires when the client's locks have been stolen
    (None when nothing is pending);
``state_bytes()``, ``lease_cpu_ops``, ``lease_msgs_sent``
    the overhead counters experiment E7/E9 compares;
``gatekeeper(msg)``
    optional inbound-message veto, installed on the endpoint.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.control import Endpoint
from repro.net.message import Message
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


class SafetyAuthority:
    """Base class wiring an authority to a server endpoint."""

    def __init__(self, sim: Simulator, endpoint: Endpoint,
                 on_steal: Callable[[str], None],
                 trace: Optional[TraceRecorder] = None):
        self.sim = sim
        self.endpoint = endpoint
        self.on_steal = on_steal
        self.trace = trace if trace is not None else endpoint.trace
        self.lease_cpu_ops = 0
        self.lease_msgs_sent = 0
        self.total_steals = 0
        endpoint.delivery_failure_listeners.append(self._on_delivery_failure)

    # -- interface ---------------------------------------------------------
    def is_suspect(self, client: str) -> bool:
        """Whether the client is currently excluded from service."""
        return False

    def resolution(self, client: str) -> Optional[Event]:
        """Event firing when a pending steal of ``client`` completes."""
        return None

    def state_bytes(self) -> int:
        """Authority memory footprint right now."""
        return 0

    def _on_delivery_failure(self, client: str, msg: Message) -> None:
        """A server-initiated message went unACKed after retries."""

    def steal_now(self, client: str) -> None:
        """Immediately execute a steal via the server callback."""
        self.total_steals += 1
        self.on_steal(client)


class NoStealAuthority(SafetyAuthority):
    """Never steal: honor the locks of unreachable clients indefinitely.

    The paper's §2 example outcome — "something as simple as a network
    partition can render major portions of a file system unavailable
    indefinitely."  Experiment E2 measures exactly that.
    """

    def _on_delivery_failure(self, client: str, msg: Message) -> None:
        self.trace.emit(self.sim.now, "authority.honor", self.endpoint.name,
                        client=client)
