"""V-system per-object leases (paper §4).

In the V operating system a lease is "a period of ownership over a data
object": one lease per cached object, renewed individually before it
expires, or the object must be purged from the cache.  The paper's §4
argument against this design is quantitative — per-object leases cost
either renewal messages proportional to the number of cached objects or
cache-policy distortion — and experiment E8 reproduces the linear
renewal traffic against Storage Tank's O(1) per-client lease.

Server side, the authority keeps one record per (object, holder) pair
and revokes single objects on expiry; client side, a renewal daemon
walks every cached lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple, TYPE_CHECKING

from repro.client.node import StorageTankClient
from repro.locks.modes import LockMode
from repro.net.message import DeliveryError, Message, MsgKind, NackError
from repro.protocols.base import SafetyAuthority
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.node import StorageTankServer

#: Approximate size of one per-object lease record.
OBJECT_LEASE_BYTES = 40


class VLeaseAuthority(SafetyAuthority):
    """Per-object lease table at the locking authority."""

    def __init__(self, sim, endpoint, on_steal, trace=None, obs=None,
                 server: Optional["StorageTankServer"] = None,
                 object_lease_duration: float = 10.0,
                 check_interval: float = 1.0):
        if server is None:
            raise ValueError("VLeaseAuthority needs the owning server")
        self.server = server
        self.object_lease_duration = object_lease_duration
        self.check_interval = check_interval
        # (client, obj) -> expiry_local
        self._table: Dict[Tuple[str, int], float] = {}
        self.object_expirations = 0
        super().__init__(sim, endpoint, on_steal, trace, obs=obs)

        server.locks.grant_listeners.append(self._on_grant)
        server.locks.release_listeners.append(self._on_release)
        endpoint.register(MsgKind.LEASE_RENEW, self._h_renew)
        sim.process(self._scan(), name=f"{endpoint.name}:vlease-scan")

    def state_bytes(self) -> int:
        """Always-on footprint: one record per locked object."""
        return len(self._table) * OBJECT_LEASE_BYTES

    # -- lock table hooks ---------------------------------------------------
    def _on_grant(self, client: str, obj: int, mode: LockMode) -> None:
        self._count_cpu()
        self._table[(client, obj)] = (self.endpoint.local_now()
                                      + self.object_lease_duration)

    def _on_release(self, client: str, obj: int) -> None:
        self._table.pop((client, obj), None)

    # -- renewal --------------------------------------------------------------
    def _h_renew(self, msg: Message):
        obj = int(msg.payload["file_id"])
        key = (msg.src, obj)
        self._count_cpu()
        if key not in self._table:
            return ("nack", {"error": "no lease"})
        self._table[key] = self.endpoint.local_now() + self.object_lease_duration
        return ("ack", {"lease": self.object_lease_duration})

    def _scan(self) -> Generator[Event, Any, None]:
        while True:
            yield self.endpoint.local_timeout(self.check_interval)
            now_local = self.endpoint.local_now()
            for (client, obj), expiry in list(self._table.items()):
                if expiry <= now_local:
                    self._count_cpu()
                    self.object_expirations += 1
                    self._table.pop((client, obj), None)
                    self.trace.emit(self.sim.now, "vlease.expire",
                                    self.endpoint.name, client=client, obj=obj)
                    self.server.locks.steal_one(client, obj)


class VLeaseClientAgent:
    """Per-object renewal daemon for a lease-less Storage Tank client.

    Renews every cached lock once per half lease duration — the message
    cost that grows linearly with the number of cached objects (E8).
    On a failed renewal the object is purged from the cache (the V
    semantics: no lease, no cached object).
    """

    def __init__(self, client: StorageTankClient,
                 object_lease_duration: float = 10.0,
                 safety_factor: float = 2.0):
        self.client = client
        self.object_lease_duration = object_lease_duration
        self.renew_interval = object_lease_duration / safety_factor
        self.renewals_sent = 0
        self.purges = 0
        self._m_msgs = client.obs.registry.counter(
            "lease.client.msgs_sent", "Client-originated lease messages",
            labels=("node",)).labels(node=client.name)
        client.sim.process(self._run(), name=f"{client.name}:vlease-renew")

    def overhead_snapshot(self) -> Dict[str, float]:
        """Client-side lease overhead (per-object renewal traffic)."""
        return {"renewals": float(self.renewals_sent),
                "purges": float(self.purges),
                "lease_msgs_sent": float(self.renewals_sent)}

    def _run(self) -> Generator[Event, Any, None]:
        ep = self.client.endpoint
        while True:
            yield ep.local_timeout(self.renew_interval)
            for obj, _mode in self.client.locks.all_held():
                self.renewals_sent += 1
                self._m_msgs.inc()
                try:
                    yield from ep.request(self.client.server, MsgKind.LEASE_RENEW,
                                          {"file_id": obj})
                except (DeliveryError, NackError):
                    # Lease gone: purge object and forget the lock.
                    self.purges += 1
                    dropped = self.client.cache.invalidate_file(obj)
                    for page in dropped:
                        self.client.app_errors += 1
                        self.client.trace.emit(
                            self.client.sim.now, "app.error", self.client.name,
                            file_id=page.file_id, tag=page.tag,
                            reason="vlease_lost")
                    self.client.locks.note_released(obj)
                    for of in self.client.fds.by_file_id(obj):
                        of.lock = LockMode.NONE
                        of.stale = True
