"""Extents and file-offset → device-block resolution.

Storage Tank separates metadata from data (paper §1.1): servers keep the
location of each file's blocks on their private high-performance store;
the shared disks hold only data blocks.  An :class:`ExtentMap` is that
piece of metadata: an ordered list of :class:`Extent` runs mapping a
file's logical block space onto ``(device, lba)`` ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

#: Bytes per data block on the shared disks.
BLOCK_SIZE = 4096


@dataclass(frozen=True)
class Extent:
    """A contiguous run of blocks on one device."""

    device: str
    start_lba: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"extent length must be positive, got {self.length}")
        if self.start_lba < 0:
            raise ValueError(f"negative start_lba {self.start_lba}")

    @property
    def end_lba(self) -> int:
        """One past the last lba of the run."""
        return self.start_lba + self.length

    def overlaps(self, other: "Extent") -> bool:
        """Whether two extents share any physical block."""
        return (self.device == other.device
                and self.start_lba < other.end_lba
                and other.start_lba < self.end_lba)


@dataclass
class ExtentMap:
    """Logical-block → physical-block mapping for one file."""

    extents: List[Extent] = field(default_factory=list)

    @property
    def block_count(self) -> int:
        """Total mapped logical blocks."""
        return sum(e.length for e in self.extents)

    @property
    def size_bytes(self) -> int:
        """Mapped capacity in bytes."""
        return self.block_count * BLOCK_SIZE

    def append(self, extent: Extent) -> None:
        """Grow the file by one extent (allocator responsibility to avoid
        overlap with other files)."""
        self.extents.append(extent)

    def resolve(self, logical_block: int) -> Tuple[str, int]:
        """Physical ``(device, lba)`` of a logical block index."""
        if logical_block < 0:
            raise IndexError(f"negative logical block {logical_block}")
        remaining = logical_block
        for e in self.extents:
            if remaining < e.length:
                return (e.device, e.start_lba + remaining)
            remaining -= e.length
        raise IndexError(f"logical block {logical_block} beyond mapped "
                         f"extent ({self.block_count} blocks)")

    def resolve_range(self, logical_start: int, count: int) -> List[Tuple[str, int, int]]:
        """Physical runs ``(device, lba, length)`` covering a logical range."""
        if count <= 0:
            return []
        runs: List[Tuple[str, int, int]] = []
        for lb in range(logical_start, logical_start + count):
            dev, lba = self.resolve(lb)
            if runs and runs[-1][0] == dev and runs[-1][1] + runs[-1][2] == lba:
                dev0, lba0, len0 = runs[-1]
                runs[-1] = (dev0, lba0, len0 + 1)
            else:
                runs.append((dev, lba, 1))
        return runs

    def iter_physical(self) -> Iterator[Tuple[str, int]]:
        """All (device, lba) pairs in logical order."""
        for e in self.extents:
            for lba in range(e.start_lba, e.end_lba):
                yield (e.device, lba)


def extents_to_payload(extents: "ExtentMap") -> List[Tuple[str, int, int]]:
    """Wire form of an extent map for control-network replies."""
    return [(e.device, e.start_lba, e.length) for e in extents.extents]


def extents_from_payload(runs: List[Tuple[str, int, int]]) -> "ExtentMap":
    """Parse the wire form back into an extent map."""
    em = ExtentMap()
    for device, start, length in runs:
        em.append(Extent(device=device, start_lba=int(start), length=int(length)))
    return em


def bytes_to_blocks(nbytes: int) -> int:
    """Blocks needed to hold ``nbytes`` (ceiling division)."""
    if nbytes < 0:
        raise ValueError(f"negative byte count {nbytes}")
    return (nbytes + BLOCK_SIZE - 1) // BLOCK_SIZE


def byte_range_to_blocks(offset: int, nbytes: int) -> Tuple[int, int]:
    """Logical ``(first_block, block_count)`` covering a byte range."""
    if offset < 0 or nbytes < 0:
        raise ValueError("negative offset or length")
    if nbytes == 0:
        return (offset // BLOCK_SIZE, 0)
    first = offset // BLOCK_SIZE
    last = (offset + nbytes - 1) // BLOCK_SIZE
    return (first, last - first + 1)
