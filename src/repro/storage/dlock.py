"""GFS-style device-enforced ``dlock`` range locks (paper §5 baseline).

The Global File System synchronizes clients with *physical* locks held
by the disk drive itself: a dlock covers a range of disk addresses and
carries a timeout counter enforced by the device, so a failed client's
lock frees itself.  The paper argues dlocks are inadequate for Storage
Tank because its locking is *logical* (distributed data structures, not
address ranges); experiment E10 compares the two under a slow-client
failure.

The timeout runs on the *device's* clock; callers supply the device's
current local time on every operation (disks cannot initiate actions,
so expiry is evaluated lazily at the next touch — exactly how a real
drive-resident counter behaves for deny decisions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class DlockDeniedError(Exception):
    """Acquisition refused: a live conflicting dlock exists."""

    def __init__(self, device: str, start_lba: int, length: int, holder: str):
        super().__init__(f"dlock [{start_lba},{start_lba + length}) on {device} "
                         f"held by {holder}")
        self.holder = holder


@dataclass
class Dlock:
    """One live device lock."""

    holder: str
    start_lba: int
    length: int
    acquired_at: float     # device-local time
    ttl: float             # device-local seconds; lock dies at acquired_at + ttl

    @property
    def end_lba(self) -> int:
        """One past the final covered lba."""
        return self.start_lba + self.length

    def expired(self, device_now: float) -> bool:
        """Whether the device-enforced timeout has elapsed."""
        return device_now >= self.acquired_at + self.ttl

    def covers(self, lba: int) -> bool:
        """Whether the range includes ``lba``."""
        return self.start_lba <= lba < self.end_lba

    def overlaps(self, start: int, length: int) -> bool:
        """Whether the range intersects ``[start, start+length)``."""
        return self.start_lba < start + length and start < self.end_lba


class DlockTable:
    """All dlocks on one device."""

    def __init__(self, device: str):
        self.device = device
        self._locks: List[Dlock] = []
        self.acquisitions = 0
        self.denials = 0
        self.expirations = 0

    def _reap(self, device_now: float) -> None:
        live = []
        for lk in self._locks:
            if lk.expired(device_now):
                self.expirations += 1
            else:
                live.append(lk)
        self._locks = live

    def acquire(self, holder: str, start_lba: int, length: int,
                ttl: float, device_now: float) -> Dlock:
        """Take a range lock or raise :class:`DlockDeniedError`.

        Re-acquisition by the current holder refreshes the timeout (the
        GFS renewal idiom).
        """
        if length <= 0 or start_lba < 0:
            raise ValueError("invalid dlock range")
        if ttl <= 0:
            raise ValueError("dlock ttl must be positive")
        self._reap(device_now)
        for lk in self._locks:
            if lk.overlaps(start_lba, length):
                if lk.holder == holder:
                    continue
                self.denials += 1
                raise DlockDeniedError(self.device, start_lba, length, lk.holder)
        # Drop the holder's own overlapping locks (refresh semantics).
        self._locks = [lk for lk in self._locks
                       if not (lk.holder == holder and lk.overlaps(start_lba, length))]
        lock = Dlock(holder=holder, start_lba=start_lba, length=length,
                     acquired_at=device_now, ttl=ttl)
        self._locks.append(lock)
        self.acquisitions += 1
        return lock

    def release(self, holder: str, start_lba: int, length: int,
                device_now: float) -> bool:
        """Drop the holder's locks overlapping the range; True if any did."""
        self._reap(device_now)
        before = len(self._locks)
        self._locks = [lk for lk in self._locks
                       if not (lk.holder == holder and lk.overlaps(start_lba, length))]
        return len(self._locks) != before

    def holder_of(self, lba: int, device_now: float) -> Optional[str]:
        """Live holder covering an lba, if any."""
        self._reap(device_now)
        for lk in self._locks:
            if lk.covers(lba):
                return lk.holder
        return None

    def live_locks(self, device_now: float) -> List[Dlock]:
        """Snapshot of unexpired locks."""
        self._reap(device_now)
        return list(self._locks)
