"""Versioned shared block devices.

A :class:`VirtualDisk` models a SAN-attached drive: a flat array of
blocks, a fence table, and (optionally) a dlock table.  Instead of byte
payloads, each block stores a :class:`BlockRecord` — the writing
initiator, an application-level *tag* identifying the logical write, and
a per-block monotonically increasing version.  Every accepted and every
denied I/O is appended to the device history; the consistency audit
replays that history against the lock/lease trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.storage.dlock import DlockTable
from repro.storage.fencing import FenceTable


@dataclass(frozen=True)
class BlockRecord:
    """Current content summary of one block."""

    tag: Optional[str]       # application write tag, None = never written
    version: int             # 0 = pristine
    writer: Optional[str]    # initiator of the last write
    written_at: float        # global time of the last write


@dataclass(frozen=True)
class IoEvent:
    """One entry in the device history."""

    time: float
    op: str                  # "write" | "read" | "denied_write" | "denied_read"
    initiator: str
    lba: int
    tag: Optional[str]
    version: int


@dataclass(frozen=True)
class DiskReadResult:
    """What a read returns for one block."""

    lba: int
    tag: Optional[str]
    version: int


_PRISTINE = BlockRecord(tag=None, version=0, writer=None, written_at=0.0)


class FencedIoError(Exception):
    """I/O was denied because the initiator is fenced at the device."""

    def __init__(self, device: str, initiator: str, op: str):
        super().__init__(f"{op} by {initiator} denied: fenced at {device}")
        self.device = device
        self.initiator = initiator


class VirtualDisk:
    """One shared disk on the SAN."""

    def __init__(self, name: str, n_blocks: int = 1 << 20,
                 record_history: bool = True):
        if n_blocks <= 0:
            raise ValueError(f"n_blocks must be positive, got {n_blocks}")
        self.name = name
        self.n_blocks = n_blocks
        self.fence_table = FenceTable(owner=name)
        self.dlocks = DlockTable(device=name)
        self._blocks: Dict[int, BlockRecord] = {}
        self._record_history = record_history
        self.history: List[IoEvent] = []
        self.reads = 0
        self.writes = 0
        self.denied = 0

    # -- core I/O (invoked by the SAN fabric) -------------------------------
    def _check(self, lba: int, count: int) -> None:
        if lba < 0 or count < 0 or lba + count > self.n_blocks:
            raise IndexError(f"I/O [{lba}, {lba + count}) outside device "
                             f"{self.name} of {self.n_blocks} blocks")

    def write(self, initiator: str, time: float,
              block_tags: Dict[int, str]) -> Dict[int, int]:
        """Write tags to blocks, returning the new per-block versions.

        Raises :class:`FencedIoError` if the initiator is fenced.
        """
        if not block_tags:
            return {}
        lbas = sorted(block_tags)
        self._check(lbas[0], lbas[-1] - lbas[0] + 1)
        if self.fence_table.is_fenced(initiator):
            self.denied += 1
            if self._record_history:
                for lba in lbas:
                    self.history.append(IoEvent(time, "denied_write", initiator,
                                                lba, block_tags[lba], -1))
            raise FencedIoError(self.name, initiator, "write")
        versions: Dict[int, int] = {}
        for lba in lbas:
            prev = self._blocks.get(lba, _PRISTINE)
            rec = BlockRecord(tag=block_tags[lba], version=prev.version + 1,
                              writer=initiator, written_at=time)
            self._blocks[lba] = rec
            versions[lba] = rec.version
            self.writes += 1
            if self._record_history:
                self.history.append(IoEvent(time, "write", initiator, lba,
                                            rec.tag, rec.version))
        return versions

    def read(self, initiator: str, time: float, lba: int,
             count: int = 1) -> List[DiskReadResult]:
        """Read ``count`` blocks; raises :class:`FencedIoError` if fenced."""
        self._check(lba, count)
        if self.fence_table.is_fenced(initiator):
            self.denied += 1
            if self._record_history:
                self.history.append(IoEvent(time, "denied_read", initiator,
                                            lba, None, -1))
            raise FencedIoError(self.name, initiator, "read")
        out = []
        for b in range(lba, lba + count):
            rec = self._blocks.get(b, _PRISTINE)
            out.append(DiskReadResult(lba=b, tag=rec.tag, version=rec.version))
            self.reads += 1
            if self._record_history:
                self.history.append(IoEvent(time, "read", initiator, b,
                                            rec.tag, rec.version))
        return out

    # -- inspection (audit/tests; not part of the device interface) ---------
    def peek(self, lba: int) -> BlockRecord:
        """Current block state without recording a read."""
        self._check(lba, 1)
        return self._blocks.get(lba, _PRISTINE)

    def version_at(self, lba: int, time: float) -> int:
        """Block version as of a past instant (from history)."""
        v = 0
        for ev in self.history:
            if ev.op == "write" and ev.lba == lba and ev.time <= time:
                v = ev.version
        return v

    def writes_by(self, initiator: str) -> List[IoEvent]:
        """All accepted writes from one initiator."""
        return [e for e in self.history if e.op == "write" and e.initiator == initiator]
