"""Shared network-attached storage devices.

Disks on the SAN are deliberately *dumb* (paper §2): they cannot run
membership protocols or initiate messages.  What they can do — and all
they can do — is:

- serve block reads/writes to any initiator the fabric lets through
  (:class:`~repro.storage.disk.VirtualDisk`);
- enforce a per-initiator *fence table*
  (:class:`~repro.storage.fencing.FenceTable`), the paper's fencing
  primitive (§2.1, §6);
- optionally implement GFS-style ``dlock`` range locks with
  device-enforced timeouts (:mod:`repro.storage.dlock`, the §5 baseline).

Blocks carry version numbers and writer tags rather than byte payloads;
the disk also keeps a full write/read history, which is the ground truth
for the offline consistency audit.
"""

from repro.storage.blockmap import BLOCK_SIZE, Extent, ExtentMap
from repro.storage.disk import (
    BlockRecord,
    DiskReadResult,
    FencedIoError,
    IoEvent,
    VirtualDisk,
)
from repro.storage.dlock import Dlock, DlockDeniedError, DlockTable
from repro.storage.fencing import FenceTable

__all__ = [
    "BLOCK_SIZE",
    "BlockRecord",
    "DiskReadResult",
    "Dlock",
    "DlockDeniedError",
    "DlockTable",
    "Extent",
    "ExtentMap",
    "FenceTable",
    "FencedIoError",
    "IoEvent",
    "VirtualDisk",
]
