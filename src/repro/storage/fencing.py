"""Per-initiator fence tables (paper §2.1, §6).

A fence is an instruction to a storage device (or to the fabric) to stop
accepting I/O from a particular initiator.  The device enforces the
denial indefinitely, until explicitly lifted.  Fencing is the backstop
for *slow computers* whose clocks violate the rate-synchronization bound
— the lease protocol cannot detect those, so Storage Tank constructs a
fence at the same moment it times out a client's locks (§6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class FenceTable:
    """The set of initiators a device currently refuses to serve."""

    owner: str = "device"
    _fenced: Set[str] = field(default_factory=set)
    history: List[Tuple[float, str, str]] = field(default_factory=list)

    def fence(self, initiator: str, time: float = 0.0) -> None:
        """Deny all future I/O from ``initiator``."""
        if initiator not in self._fenced:
            self._fenced.add(initiator)
            self.history.append((time, "fence", initiator))

    def unfence(self, initiator: str, time: float = 0.0) -> None:
        """Re-admit a previously fenced initiator."""
        if initiator in self._fenced:
            self._fenced.discard(initiator)
            self.history.append((time, "unfence", initiator))

    def is_fenced(self, initiator: str) -> bool:
        """Whether I/O from ``initiator`` is currently denied."""
        return initiator in self._fenced

    @property
    def fenced_initiators(self) -> Set[str]:
        """Snapshot of the deny list."""
        return set(self._fenced)

    def clear(self, time: float = 0.0) -> None:
        """Lift every fence."""
        for ini in list(self._fenced):
            self.unfence(ini, time)
